package physical

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSharedCacheWarmStartAcrossSearchers: two searchers compiled from
// equal memos share one cache; after the first publishes, the second
// prices the same sets bit-identically while hitting the shared tier.
func TestSharedCacheWarmStartAcrossSearchers(t *testing.T) {
	s1 := buildSearcher(t, sharedPairQueries()...)
	s2 := buildSearcher(t, sharedPairQueries()...)
	if s1.structHash() != s2.structHash() {
		t.Fatal("equal batches compiled to different struct hashes")
	}
	cache := NewSharedCache()
	s1.AttachSharedCache(cache)
	s2.AttachSharedCache(cache)

	sh := s1.M.Shareable()
	var want []float64
	for _, id := range sh {
		want = append(want, s1.BestCost(s1.NewNodeSet(id)))
	}
	s1.PublishCache()
	if cache.Len() == 0 {
		t.Fatal("publish left the shared cache empty")
	}

	s2.ResetStats()
	for i, id := range sh {
		if got := s2.BestCost(s2.NewNodeSet(id)); got != want[i] {
			t.Errorf("warm cost %d: %v != cold %v", i, got, want[i])
		}
	}
	if s2.SharedHits == 0 {
		t.Error("warm searcher never hit the shared cache")
	}
}

// TestSharedCacheInvalidate: Invalidate makes every entry unobservable and
// forces relearning, without changing any cost.
func TestSharedCacheInvalidate(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	cache := NewSharedCache()
	s.AttachSharedCache(cache)
	set := s.NewNodeSet(s.M.Shareable()[0])
	want := s.BestCost(set)
	s.PublishCache()
	if cache.Len() == 0 {
		t.Fatal("publish stored nothing")
	}
	cache.Invalidate()
	if cache.Len() != 0 {
		t.Errorf("invalidated cache still reports %d live entries", cache.Len())
	}
	if got := s.BestCost(set); got != want {
		t.Errorf("cost after invalidation %v != %v", got, want)
	}
}

// TestSharedCacheNamespaceSeparatesFlags: publishing under one flag
// setting must not leak into another — the extended-operator cost of a
// fresh searcher and of a cache-sharing searcher must agree exactly.
func TestSharedCacheNamespaceSeparatesFlags(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	cache := NewSharedCache()
	s.AttachSharedCache(cache)
	set := s.NewNodeSet(s.M.Shareable()[0])
	s.BestCost(set)
	s.PublishCache()

	s.ExtendedOps = true
	s.ClearCache()
	got := s.BestCost(set)

	fresh := buildSearcher(t, sharedPairQueries()...)
	fresh.ExtendedOps = true
	fresh.ClearCache()
	if want := fresh.BestCost(set); got != want {
		t.Errorf("flag-toggled cost with shared cache %v != fresh %v", got, want)
	}
}

// TestSharedCacheConcurrentSearchers: many searchers over the same memo
// publishing and reading one cache concurrently stay race-free (run under
// -race) and bit-identical.
func TestSharedCacheConcurrentSearchers(t *testing.T) {
	ref := buildSearcher(t, sharedPairQueries()...)
	sh := ref.M.Shareable()
	var want []float64
	for _, id := range sh {
		want = append(want, ref.BestCost(ref.NewNodeSet(id)))
	}
	cache := NewSharedCache()
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := buildSearcher(t, sharedPairQueries()...)
			s.AttachSharedCache(cache)
			for i, id := range sh {
				if got := s.BestCost(s.NewNodeSet(id)); got != want[i] {
					errs <- "cost diverged under concurrency"
					return
				}
			}
			s.PublishCache()
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestSharedCacheMergeCapKeepsBatch is the shard-cap eviction regression
// test: one bulk publish larger than a shard's cap must come out of the
// merge with every one of its own keys readable. The old merge reset the
// shard map inside the per-entry write loop whenever the cap was hit, so
// a batch ≥ the cap kept only its tail — entries written earlier in the
// same publish were silently discarded.
func TestSharedCacheMergeCapKeepsBatch(t *testing.T) {
	c := NewSharedCache()
	const ns = uint64(0xabcdef)
	// Collect sharedShardCap+64 keys that all land in one shard, so the
	// merge's own bucket exceeds the cap.
	var kvs []sharedKV
	var shard uint64
	for mask := uint64(0); len(kvs) < sharedShardCap+64; mask++ {
		k := cacheKey{g: 1, ord: 2, mask: mask}
		h := c.shardIndex(ns, k)
		if len(kvs) == 0 {
			shard = h
		} else if h != shard {
			continue
		}
		kvs = append(kvs, sharedKV{k: k, v: float64(mask) + 0.5})
	}
	c.merge(ns, kvs)
	lost := 0
	for _, e := range kvs {
		v, ok := c.get(ns, e.k)
		if !ok {
			lost++
			continue
		}
		if v != e.v {
			t.Fatalf("key mask=%d came back %v, want %v", e.k.mask, v, e.v)
		}
	}
	if lost > 0 {
		t.Fatalf("merge lost %d of its own %d entries (cap eviction ran mid-batch)", lost, len(kvs))
	}
}

// TestSharedCacheMergeCapResetsAtMostOnce: consecutive merges that
// overflow a shard must each survive intact — the reset happens before a
// merge's writes, never between them — and the shard never holds more
// than the larger of the cap and one merge's own bucket.
func TestSharedCacheMergeCapResetsAtMostOnce(t *testing.T) {
	c := NewSharedCache()
	const ns = uint64(0x1717)
	shard := c.shardIndex(ns, cacheKey{g: 3, ord: 1, mask: 0})
	oneShard := func(n int, start uint64) []sharedKV {
		var kvs []sharedKV
		for mask := start; len(kvs) < n; mask++ {
			k := cacheKey{g: 3, ord: 1, mask: mask}
			if c.shardIndex(ns, k) != shard {
				continue
			}
			kvs = append(kvs, sharedKV{k: k, v: float64(mask)})
		}
		return kvs
	}
	a := oneShard(sharedShardCap/2, 0)
	c.merge(ns, a)
	// A second merge into the same shard pushes past the cap: it may
	// evict the first batch wholesale, but its own keys must all land.
	b := oneShard(sharedShardCap, 1<<32)
	c.merge(ns, b)
	for _, e := range b {
		if v, ok := c.get(ns, e.k); !ok || v != e.v {
			t.Fatalf("second merge lost its own key mask=%d (got %v, %v)", e.k.mask, v, ok)
		}
	}
}

// errAfterCtx reports cancellation once Err has been consulted n times —
// a deterministic mid-batch abort trigger for the sequential path.
type errAfterCtx struct {
	left int
}

func (c *errAfterCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *errAfterCtx) Done() <-chan struct{}       { return nil }
func (c *errAfterCtx) Value(any) any               { return nil }

func (c *errAfterCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// TestBestCostBatchCtxReturnsCompletedPrefix: an aborted batch hands back
// the leading results it finished, bit-identical to sequential calls.
func TestBestCostBatchCtxReturnsCompletedPrefix(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	if len(sh) < 2 {
		t.Fatalf("need ≥ 2 shareable nodes, have %d", len(sh))
	}
	// Singletons, the empty set, pairs: enough distinct sets to abort in
	// the middle of.
	mats := []NodeSet{{}, s.NewNodeSet(sh[0]), s.NewNodeSet(sh[1]), s.NewNodeSet(sh[0], sh[1]), s.NewNodeSet(sh[0])}
	want := make([]float64, len(mats))
	for i, m := range mats {
		want[i] = s.BestCost(m)
	}
	s.Parallelism = 1
	costs, ok := s.BestCostBatchCtx(&errAfterCtx{left: 3}, mats)
	if ok {
		t.Fatal("aborted batch reported ok")
	}
	if len(costs) != 3 {
		t.Fatalf("completed prefix has %d results, want 3", len(costs))
	}
	for i, c := range costs {
		if c != want[i] {
			t.Errorf("prefix cost %d: %v != sequential %v", i, c, want[i])
		}
	}
	// The concurrent dispatch path under an already-dead context completes
	// nothing: the prefix is empty, never partial garbage.
	s.Parallelism = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	costs, ok = s.BestCostBatchCtx(ctx, mats)
	if ok || len(costs) != 0 {
		t.Errorf("dead-context batch: ok=%v prefix=%d, want false/empty", ok, len(costs))
	}
}
