package physical

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/memo"
)

// sharedCacheShards is the lock-striping width of a SharedCache. Keys are
// spread by a mixed hash, so 64 shards keep write contention negligible
// even with a full worker pool filling the cache concurrently.
const sharedCacheShards = 64

// sharedShardCap bounds each shard's entry count (≈512k entries across the
// cache). Cached costs are pure functions of their key, so when a shard
// fills up it is simply dropped and relearned — eviction can never change
// a result, only cost a recomputation.
const sharedShardCap = 1 << 13

// SharedCache is a sharded, lock-striped cross-call cost cache owned by a
// longer-lived holder — repro.Session — and attached to every searcher the
// holder creates. Entries are keyed by the searcher's structural namespace
// (compiled memo, cost constants and operator flags) plus the incremental
// cache key {group, order, compute, mask}, so caches attached to different
// DAGs or flag settings never observe each other's values, and a batch
// identical to an earlier one starts warm instead of relearning per
// worker.
//
// The hot path stays lock-free: workers read the SharedCache only on a
// private-L1 miss (promoting hits so each shared key pays its read lock at
// most once per worker) and never write it mid-evaluation — freshly
// computed values are published in bulk by Searcher.PublishCache, one lock
// acquisition per shard, when the owner decides a call's learning is worth
// keeping (repro.Session publishes after every Optimize call).
//
// Cached values are pure functions of their full key; the cache therefore
// never changes any cost, only how often it is recomputed, and lookups are
// safe from any number of workers concurrently. Invalidate drops every
// entry in O(1) by bumping the cache epoch (stale entries are ignored and
// lazily overwritten).
type SharedCache struct {
	epoch  atomic.Uint64
	shards [sharedCacheShards]sharedShard
}

type sharedShard struct {
	mu sync.RWMutex
	m  map[sharedKey]sharedEntry
}

type sharedKey struct {
	ns uint64
	k  cacheKey
}

type sharedEntry struct {
	v     float64
	epoch uint64
}

// NewSharedCache returns an empty cache ready for concurrent use.
func NewSharedCache() *SharedCache {
	c := &SharedCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[sharedKey]sharedEntry)
	}
	return c
}

// Invalidate drops every cached entry in O(1) by bumping the epoch.
// Flag toggles do not require it (the namespace already separates flag
// settings); it exists for holders that want to bound memory or force a
// cold start.
func (c *SharedCache) Invalidate() { c.epoch.Add(1) }

// Len reports the live entry count under the current epoch (for tests and
// introspection; takes every shard read-lock).
func (c *SharedCache) Len() int {
	ep := c.epoch.Load()
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, e := range sh.m {
			if e.epoch == ep {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

func (c *SharedCache) shardIndex(ns uint64, k cacheKey) uint64 {
	h := ns ^ k.mask ^ uint64(uint32(k.g))<<29 ^ uint64(uint32(k.ord))<<13
	if k.compute {
		h ^= 0x9e3779b97f4a7c15
	}
	h *= 0xff51afd7ed558ccd // fmix64
	h ^= h >> 33
	return h & (sharedCacheShards - 1)
}

func (c *SharedCache) shard(ns uint64, k cacheKey) *sharedShard {
	return &c.shards[c.shardIndex(ns, k)]
}

func (c *SharedCache) get(ns uint64, k cacheKey) (float64, bool) {
	ep := c.epoch.Load()
	sh := c.shard(ns, k)
	sh.mu.RLock()
	e, ok := sh.m[sharedKey{ns: ns, k: k}]
	sh.mu.RUnlock()
	if !ok || e.epoch != ep {
		return 0, false
	}
	return e.v, true
}

// benefitGroup is the reserved pseudo-group benefit-oracle entries are
// stored under: real groups are non-negative, so mb(S) values — keyed by
// the submod set key in the mask field — share the shard maps (and the
// snapshot machinery) with the (group, order, mask) cost entries without
// ever colliding with them.
const benefitGroup = memo.GroupID(-1)

// GetBenefit looks up a memoized oracle value mb(S) under a namespace;
// key is the submod set key of S. Safe for concurrent use.
func (c *SharedCache) GetBenefit(ns, key uint64) (float64, bool) {
	return c.get(ns, cacheKey{g: benefitGroup, mask: key})
}

// PutBenefit publishes one memoized oracle value under a namespace. Values
// are pure functions of (namespace, key), so concurrent writers can only
// ever store the same value. Safe for concurrent use; a single direct
// shard write, cheap enough to call per fresh oracle evaluation.
func (c *SharedCache) PutBenefit(ns, key uint64, v float64) {
	k := cacheKey{g: benefitGroup, mask: key}
	ep := c.epoch.Load()
	sh := c.shard(ns, k)
	sh.mu.Lock()
	if len(sh.m) >= sharedShardCap {
		sh.m = make(map[sharedKey]sharedEntry)
	}
	sh.m[sharedKey{ns: ns, k: k}] = sharedEntry{v: v, epoch: ep}
	sh.mu.Unlock()
}

// sharedKV is one entry of a bulk merge.
type sharedKV struct {
	k cacheKey
	v float64
}

// merge bulk-publishes entries under one namespace, acquiring each shard
// lock once. A shard that cannot absorb its share of the batch under the
// cap is reset — at most once per merge, before any of the batch's
// entries are written — and relearned, so a publish's own learning
// always survives its merge, however large the batch. (Resetting inside
// the write loop, as this used to, kept only the batch's tail and wiped
// every other namespace's entries on each wrap.) Values are pure
// functions of their key, so eviction only ever costs recomputation; a
// shard briefly exceeds the cap only when one merge's own bucket is
// larger than the cap itself.
func (c *SharedCache) merge(ns uint64, kvs []sharedKV) {
	ep := c.epoch.Load()
	buckets := make([][]sharedKV, sharedCacheShards)
	for _, e := range kvs {
		h := c.shardIndex(ns, e.k)
		buckets[h] = append(buckets[h], e)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.m)+len(b) > sharedShardCap {
			sh.m = make(map[sharedKey]sharedEntry, len(b))
		}
		for _, e := range b {
			sh.m[sharedKey{ns: ns, k: e.k}] = sharedEntry{v: e.v, epoch: ep}
		}
		sh.mu.Unlock()
	}
}

// fnv64 accumulates an FNV-1a hash over mixed-width values.
type fnv64 uint64

func newFNV64() fnv64 { return 14695981039346656037 }

func (h *fnv64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= (v >> uint(8*i)) & 0xff
		x *= 1099511628211
	}
	*h = fnv64(x)
}

func (h *fnv64) i(v int)     { h.u64(uint64(int64(v))) }
func (h *fnv64) f(v float64) { h.u64(math.Float64bits(v)) }

func (h *fnv64) b(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

func (h *fnv64) str(s string) {
	h.i(len(s))
	for i := 0; i < len(s); i++ {
		h.u64(uint64(s[i]))
	}
}

// structHash fingerprints the compiled search space: groups, query roots,
// shareable slots, per-group cost constants and every candidate template
// with its precomputed costs. Two searchers with equal hashes price every
// (group, order, mask) key identically, so the hash — combined with the
// operator flags (cacheNS) — namespaces entries in a SharedCache. The
// 64-bit fingerprint makes a cross-DAG collision astronomically unlikely
// rather than impossible; a collision could only surface when one
// SharedCache is attached to searchers over different batches.
func (s *Searcher) structHash() uint64 {
	h := newFNV64()
	h.i(s.M.NumGroups())
	h.i(s.numOrds)
	h.i(len(s.M.QueryRoots))
	for _, r := range s.M.QueryRoots {
		h.i(int(r))
	}
	h.i(s.SI.Len())
	for g := 0; g < s.M.NumGroups(); g++ {
		h.i(int(s.slot[g]))
		h.f(s.blocksArr[g])
		h.f(s.sortArr[g])
		h.f(s.readArr[g])
		h.f(s.writeArr[g])
		h.i(len(s.tmpls[g]))
		for i := range s.tmpls[g] {
			t := &s.tmpls[g][i]
			h.str(t.op)
			h.f(t.local)
			h.f(t.localSpill)
			h.i(int(t.matGate))
			h.i(int(t.out))
			h.i(int(t.nchild))
			for ci := uint8(0); ci < t.nchild; ci++ {
				h.i(int(t.child[ci].g))
				h.i(int(t.child[ci].ord))
			}
			h.b(t.passthrough)
			h.b(t.extended)
		}
	}
	return uint64(h)
}

// cacheNS is the SharedCache namespace of the searcher's current flag
// settings: the structural fingerprint mixed with the cost-relevant
// operator flags, so toggling a flag moves to a disjoint namespace
// instead of requiring an invalidation.
func (s *Searcher) cacheNS() uint64 {
	ns := s.structSum
	if s.ExtendedOps {
		ns ^= 0xa076_1d64_78bd_642f
	}
	if s.MatOrders {
		ns ^= 0xe703_7ed1_a0b4_28db
	}
	return ns
}

// Fingerprint identifies the compiled search space plus the cost-relevant
// operator flags: the same 64-bit namespace SharedCache entries live
// under. Checkpoint tokens embed it so a resume against a different
// catalog, batch, or flag setting is rejected instead of silently
// producing garbage.
func (s *Searcher) Fingerprint() uint64 { return s.cacheNS() }

// AttachSharedCache attaches a cross-call L2 cache: every worker keeps its
// private (lock-free) L1 map, missing into c and promoting hits, and
// PublishCache merges the workers' learning back. Attaching a longer-lived
// cache (repro.Session owns one) lets identical batches start warm. A nil
// c detaches, leaving workers with private caches only — the default for
// a fresh searcher. Attach only between evaluations, never during a
// concurrent batch.
func (s *Searcher) AttachSharedCache(c *SharedCache) { s.shared = c }

// Shared returns the attached cross-call L2 cache (nil unless attached).
func (s *Searcher) Shared() *SharedCache { return s.shared }

// PublishCache bulk-merges every worker's private cross-call cache into
// the attached SharedCache under the current flag namespace, one lock
// acquisition per shard — the write half of the L1/L2 protocol, kept off
// the evaluation hot path. It is a no-op without an attached cache (or
// with the incremental cache disabled) and must only be called between
// evaluations, like every other cache operation.
func (s *Searcher) PublishCache() {
	if s.shared == nil || !s.Incremental {
		return
	}
	ns := s.cacheNS()
	for _, w := range s.workers {
		var kvs []sharedKV
		drain := func(buckets []*l1Bucket, compute bool) {
			for idx, b := range buckets {
				if b == nil || b.ep != w.l1Epoch || b.occ == 0 {
					continue
				}
				g := memo.GroupID(idx / s.numOrds)
				ord := ordID(idx % s.numOrds)
				occ := b.occ
				for occ != 0 {
					j := bits.TrailingZeros64(occ)
					occ &= occ - 1
					e := &b.entries[j]
					kvs = append(kvs, sharedKV{k: cacheKey{g: g, ord: ord, compute: compute, mask: e.mask}, v: e.val})
				}
			}
		}
		drain(w.useL1, false)
		drain(w.compL1, true)
		if len(kvs) > 0 {
			s.shared.merge(ns, kvs)
		}
	}
}
