package physical

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/memo"
)

// seedCache fills a cache with a deterministic mix of cost and benefit
// entries across two namespaces.
func seedCache() *SharedCache {
	c := NewSharedCache()
	var kvs []sharedKV
	for g := 0; g < 5; g++ {
		for ord := 0; ord < 2; ord++ {
			for m := uint64(0); m < 8; m++ {
				kvs = append(kvs, sharedKV{
					k: cacheKey{g: memo.GroupID(g), ord: ordID(ord), compute: m%2 == 0, mask: m * 0x9e3779b97f4a7c15},
					v: float64(g*100+ord*10) + float64(m)/7,
				})
			}
		}
	}
	c.merge(0x1111222233334444, kvs)
	c.merge(0xaaaabbbbccccdddd, kvs[:20])
	for i := 0; i < 12; i++ {
		c.PutBenefit(0x1111222233334444, uint64(i)*0x2545f4914f6cdd1d, math.Sqrt(float64(i+1)))
	}
	return c
}

func TestSnapshotRoundTripByteStable(t *testing.T) {
	c := seedCache()
	snap := c.Export("sf=1")
	enc1, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Decode → re-encode is byte-identical (canonical form is a fixpoint).
	dec, err := DecodeCacheSnapshot(enc1)
	if err != nil {
		t.Fatalf("decode of own export: %v", err)
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("decode→encode of an export is not byte-identical")
	}

	// Import into a fresh cache → export is byte-identical too, and the
	// entry count round-trips.
	c2 := NewSharedCache()
	n, err := c2.Import(dec, "sf=1")
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Len(); n != want || c2.Len() != want {
		t.Fatalf("imported %d entries into a cache of %d, want %d", n, c2.Len(), want)
	}
	enc3, err := c2.Export("sf=1").Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc3) {
		t.Fatal("export of an imported cache is not byte-identical to the original export")
	}

	// Every individual value survives: spot-check the benefit entries.
	for i := 0; i < 12; i++ {
		k := uint64(i) * 0x2545f4914f6cdd1d
		v, ok := c2.GetBenefit(0x1111222233334444, k)
		if !ok || v != math.Sqrt(float64(i+1)) {
			t.Fatalf("benefit %d = (%v, %v) after round trip", i, v, ok)
		}
	}
}

func TestSnapshotScopeAndVersionMismatch(t *testing.T) {
	snap := seedCache().Export("sf=1")

	c := NewSharedCache()
	if _, err := c.Import(snap, "sf=2"); !isSnapErr(err, "scope") {
		t.Fatalf("scope mismatch import = %v, want *SnapshotError{scope}", err)
	}
	if c.Len() != 0 {
		t.Fatal("rejected import still merged entries")
	}

	bad := *snap
	bad.Version = 2
	if _, err := c.Import(&bad, "sf=1"); !isSnapErr(err, "version") {
		t.Fatalf("version mismatch import = %v, want *SnapshotError{version}", err)
	}
	if _, err := c.Import(nil, "sf=1"); !isSnapErr(err, "malformed") {
		t.Fatalf("nil snapshot import = %v, want *SnapshotError{malformed}", err)
	}
}

func isSnapErr(err error, reason string) bool {
	var se *SnapshotError
	return errors.As(err, &se) && se.Reason == reason
}

func TestSnapshotDecodeRejectsTampering(t *testing.T) {
	enc, err := seedCache().Export("sf=1").Encode()
	if err != nil {
		t.Fatal(err)
	}
	s := string(enc)
	cases := []struct {
		name, data, reason string
	}{
		{"not json", "{", "malformed"},
		{"unknown field", strings.Replace(s, `"version"`, `"bogus": 1, "version"`, 1), "malformed"},
		{"wrong version", strings.Replace(s, `"version": 1`, `"version": 9`, 1), "version"},
		{"bad checksum", flipLastHexDigit(t, s, `"checksum"`), "checksum"},
		{"bad hex width", strings.Replace(s, `"ns": "1111222233334444"`, `"ns": "111122223333444"`, 1), "malformed"},
		{"uppercase hex", strings.Replace(s, `"ns": "1111222233334444"`, `"ns": "111122223333444A"`, 1), "malformed"},
		{"value tamper", flipLastHexDigit(t, s, `"v"`), "checksum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeCacheSnapshot([]byte(tc.data))
			if !isSnapErr(err, tc.reason) {
				t.Fatalf("decode = %v, want *SnapshotError{%s}", err, tc.reason)
			}
		})
	}
}

// flipLastHexDigit flips one hex digit of the first string value following
// the given JSON key, invalidating its content without breaking JSON.
func flipLastHexDigit(t *testing.T, s, key string) string {
	t.Helper()
	i := strings.Index(s, key)
	if i < 0 {
		t.Fatalf("key %s not found", key)
	}
	q := strings.Index(s[i+len(key):], `: "`)
	start := i + len(key) + q + 3
	end := strings.Index(s[start:], `"`) + start
	c := s[end-1]
	repl := byte('0')
	if c == '0' {
		repl = '1'
	}
	return s[:end-1] + string(repl) + s[end:]
}

func TestSnapshotOutOfOrderRejected(t *testing.T) {
	c := seedCache()
	snap := c.Export("sf=1")
	if len(snap.Namespaces) < 2 {
		t.Fatal("seed cache has fewer than 2 namespaces")
	}
	snap.Namespaces[0], snap.Namespaces[1] = snap.Namespaces[1], snap.Namespaces[0]
	snap.Checksum = snap.checksum() // valid checksum, wrong order
	enc, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCacheSnapshot(enc); !isSnapErr(err, "malformed") {
		t.Fatalf("out-of-order namespaces decode = %v, want *SnapshotError{malformed}", err)
	}

	snap = c.Export("sf=1")
	es := snap.Namespaces[0].Entries
	if len(es) < 2 {
		t.Fatal("first namespace has fewer than 2 entries")
	}
	es[0], es[1] = es[1], es[0]
	snap.Checksum = snap.checksum()
	enc, err = snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCacheSnapshot(enc); !isSnapErr(err, "malformed") {
		t.Fatalf("out-of-order entries decode = %v, want *SnapshotError{malformed}", err)
	}
}

func TestSnapshotEmptyCache(t *testing.T) {
	snap := NewSharedCache().Export("empty")
	enc, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCacheSnapshot(enc)
	if err != nil {
		t.Fatalf("empty snapshot does not round-trip: %v", err)
	}
	if n, err := NewSharedCache().Import(dec, "empty"); n != 0 || err != nil {
		t.Fatalf("empty import = (%d, %v)", n, err)
	}
}

// FuzzCacheSnapshot: any input either fails to decode with a typed
// *SnapshotError, or decodes to a snapshot whose re-encoding is a
// canonical fixpoint (encode → decode → encode byte-identical) and whose
// import into a fresh cache succeeds with a matching entry count.
func FuzzCacheSnapshot(f *testing.F) {
	// A small valid snapshot seeds the mutator (the full seedCache export
	// is covered by the unit tests; a large seed only slows the fuzzer).
	tiny := NewSharedCache()
	tiny.merge(0x1111222233334444, []sharedKV{
		{k: cacheKey{g: 1, ord: 0, mask: 0x2a}, v: 1.5},
		{k: cacheKey{g: 1, ord: 1, compute: true, mask: 0x2b}, v: -2.25},
	})
	tiny.PutBenefit(0x1111222233334444, 7, 3.5)
	enc, err := tiny.Export("sf=1").Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	small, _ := NewSharedCache().Export("s").Encode()
	f.Add(small)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"scope":"x","namespaces":[],"checksum":"0000000000000000"}`))
	f.Add([]byte(strings.Replace(string(enc), `"compute": true`, `"compute": false`, 1)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeCacheSnapshot(data)
		if err != nil {
			var se *SnapshotError
			if !errors.As(err, &se) {
				t.Fatalf("decode error is not a *SnapshotError: %v", err)
			}
			return
		}
		enc1, err := snap.Encode()
		if err != nil {
			t.Fatalf("valid snapshot fails to encode: %v", err)
		}
		snap2, err := DecodeCacheSnapshot(enc1)
		if err != nil {
			t.Fatalf("re-encoding of a valid snapshot fails to decode: %v", err)
		}
		enc2, err := snap2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatal("encode → decode → encode is not a fixpoint")
		}
		c := NewSharedCache()
		n, err := c.Import(snap, snap.Scope)
		if err != nil {
			t.Fatalf("valid snapshot fails to import: %v", err)
		}
		want := 0
		for _, ns := range snap.Namespaces {
			want += len(ns.Entries)
		}
		if n != want {
			t.Fatalf("import reported %d entries, snapshot carries %d", n, want)
		}
	})
}
