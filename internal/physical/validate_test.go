package physical

import (
	"math/rand"
	"strings"
	"testing"
)

func TestValidatePlanAcceptsExtractedPlans(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		set := s.NewNodeSet()
		for _, id := range sh {
			if r.Intn(2) == 0 {
				set.Add(id)
			}
		}
		plan := s.BestPlan(set)
		if err := s.ValidatePlan(plan, set); err != nil {
			t.Fatalf("trial %d (S=%v): %v", trial, set, err)
		}
	}
}

func TestValidatePlanCatchesTampering(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	set := s.NewNodeSet()
	for _, id := range s.M.Shareable() {
		set.Add(id)
		break
	}
	cases := []struct {
		name   string
		mutate func(cp *ConsolidatedPlan)
		want   string
	}{
		{"total", func(cp *ConsolidatedPlan) { cp.Total += 1000 }, "recomputed total"},
		{"writeCost", func(cp *ConsolidatedPlan) { cp.Steps[0].WriteCost *= 2 }, "write cost"},
		{"subtree", func(cp *ConsolidatedPlan) {
			n := cp.Queries[0]
			for len(n.Children) > 0 {
				n = n.Children[0]
			}
			n.Cost = -5
		}, "cost"},
		{"missingStep", func(cp *ConsolidatedPlan) { cp.Steps = nil }, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			plan := s.BestPlan(set)
			c.mutate(plan)
			err := s.ValidatePlan(plan, set)
			if err == nil {
				t.Fatal("tampered plan accepted")
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidatePlanExtendedOps(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	s.ExtendedOps = true
	set := s.NewNodeSet()
	plan := s.BestPlan(set)
	if err := s.ValidatePlan(plan, set); err != nil {
		t.Fatalf("extended-ops plan rejected: %v", err)
	}
}
