package physical

import (
	"math/bits"

	"repro/internal/memo"
)

// CostBreakdown decomposes bc(S) into the components that belong to
// individual queries versus the shared materializations. bc(S) is
//
//	Σ_{s∈S} (compute(s) + matWriteCost(s))  +  Σ_q useCost(root_q)
//
// (see bestCostOn): every term after the materialization sum is owned by
// exactly one query root, which is what lets a batched serving layer
// attribute an exact cost share to each member of a coalesced batch.
// Total accumulates the terms in the same order as BestCost, so it is
// bit-identical to BestCost(mat) on a warm worker.
type CostBreakdown struct {
	// Total is bc(mat), bit-identical to BestCost(mat).
	Total float64
	// MatGroups lists the materialized groups in ascending id order, and
	// MatCosts[i] is MatGroups[i]'s compute + materialize-write cost.
	MatGroups []memo.GroupID
	MatCosts  []float64
	// RootUse[i] is the use cost of QueryRoots[i] under the set: the cost
	// of answering that query given the materializations.
	RootUse []float64
}

// CostBreakdown evaluates bc(mat) on worker 0 and returns its per-root /
// per-materialization decomposition. It counts as one bestCost invocation
// in the searcher stats and warms the same caches, so calling it after a
// run re-derives the final set's breakdown at cache-hit cost.
func (s *Searcher) CostBreakdown(mat NodeSet) CostBreakdown {
	w := s.worker(0)
	w.bcCalls++
	w.initCall(mat.bits)
	bd := CostBreakdown{RootUse: make([]float64, len(s.M.QueryRoots))}
	total := 0.0
	for _, id := range w.matGroups() {
		c := w.compute(id, 0) + s.writeArr[id]
		bd.MatGroups = append(bd.MatGroups, id)
		bd.MatCosts = append(bd.MatCosts, c)
		total += c
	}
	for i, root := range s.M.QueryRoots {
		u := w.useCost(root, 0)
		bd.RootUse[i] = u
		total += u
	}
	bd.Total = total
	w.flushStats()
	return bd
}

// RootsReaching returns the indices (into Memo.QueryRoots) of the query
// roots whose cone contains the given shareable group, in ascending order.
// It returns nil for non-shareable groups. This is the structural reach
// rootMask the lazy-greedy pruning uses (SharesQueryRoot), exposed so an
// attribution layer can decide which batch members a materialized node
// serves. Safe for concurrent use after construction.
func (s *Searcher) RootsReaching(g memo.GroupID) []int {
	sl := s.slot[g]
	if sl < 0 {
		return nil
	}
	var out []int
	for wi, wv := range s.rootMask[sl] {
		for v := wv; v != 0; v &= v - 1 {
			out = append(out, wi*64+bits.TrailingZeros64(v))
		}
	}
	return out
}
