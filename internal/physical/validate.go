package physical

import (
	"fmt"

	"repro/internal/memo"
)

// ValidatePlan recomputes the cost of an extracted consolidated plan
// bottom-up from the cost model and compares it with the costs recorded
// during extraction; it also checks structural invariants (materialization
// steps precede their readers, every matscan has a step, orders delivered
// match the operators). It is the independent audit used by tests and by
// `cmd/mqo` after extraction — extraction and search share candidate
// generation, so an inconsistency means a real bug, not drift.
func (s *Searcher) ValidatePlan(cp *ConsolidatedPlan, mat NodeSet) error {
	seen := map[memo.GroupID]bool{}
	total := 0.0
	for i, st := range cp.Steps {
		if !mat.Has(st.Group) {
			return fmt.Errorf("step %d materializes group %d not in S", i, st.Group)
		}
		if err := s.validateNode(st.Plan, seen); err != nil {
			return fmt.Errorf("step %d: %w", i, err)
		}
		if want := s.matWriteCost(st.Group); !approxEqual(st.WriteCost, want) {
			return fmt.Errorf("step %d: write cost %v, model says %v", i, st.WriteCost, want)
		}
		seen[st.Group] = true
		total += st.Plan.Cost + st.WriteCost
	}
	if len(seen) != mat.Len() {
		return fmt.Errorf("plan materializes %d groups, S has %d", len(seen), mat.Len())
	}
	for qi, q := range cp.Queries {
		if err := s.validateNode(q, seen); err != nil {
			return fmt.Errorf("query %d: %w", qi, err)
		}
		total += q.Cost
	}
	if !approxEqual(total, cp.Total) {
		return fmt.Errorf("recomputed total %v != plan total %v", total, cp.Total)
	}
	return nil
}

// validateNode checks one plan subtree: children costs add up, matscans
// only read already-materialized groups, and delivered orders are sane.
func (s *Searcher) validateNode(n *PlanNode, matDone map[memo.GroupID]bool) error {
	for _, c := range n.Children {
		if err := s.validateNode(c, matDone); err != nil {
			return err
		}
	}
	childSum := 0.0
	for _, c := range n.Children {
		childSum += c.Cost
	}
	switch n.Op {
	case OpNameMatScan:
		if !matDone[n.Group] {
			return fmt.Errorf("matscan of group %d before its materialization step", n.Group)
		}
		if want := s.matReadCost(n.Group); !approxEqual(n.Cost, want) {
			return fmt.Errorf("matscan group %d cost %v, model says %v", n.Group, n.Cost, want)
		}
	case OpNameSort:
		if len(n.Order) == 0 {
			return fmt.Errorf("sort node with no order")
		}
		if want := childSum + s.sortCost(n.Group); !approxEqual(n.Cost, want) {
			return fmt.Errorf("sort over group %d cost %v, want %v", n.Group, n.Cost, want)
		}
	case OpNameScan, OpNameIndexScan:
		if n.Table == "" {
			return fmt.Errorf("scan without a table")
		}
		if n.Cost <= 0 {
			return fmt.Errorf("scan of %s with non-positive cost %v", n.Table, n.Cost)
		}
	default:
		// Local cost must be non-negative: subtree cost ≥ children total.
		if n.Cost < childSum-1e-6 {
			return fmt.Errorf("%s over group %d: subtree cost %v below children total %v",
				n.Op, n.Group, n.Cost, childSum)
		}
	}
	if n.Rows < 0 {
		return fmt.Errorf("%s over group %d: negative row estimate", n.Op, n.Group)
	}
	return nil
}

func approxEqual(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}
