package physical

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/memo"
	"repro/internal/strictjson"
)

// snapshotVersion is the wire version of CacheSnapshot. Decoders reject
// any other value with a typed *SnapshotError rather than guessing.
const snapshotVersion = 1

// CacheSnapshot is a portable, versioned image of a SharedCache: every
// live cost key and memoized oracle value, grouped by search-space
// namespace, in canonical order. It exists so a warm replica can hand its
// learning to a cold one — the serving tier's GET/PUT /v1/cache/snapshot
// and the mqoserver -warm-from flag move exactly this object.
//
// The encoding is canonical: namespaces sort by fingerprint, entries sort
// by (group, order, compute, mask), and every 64-bit quantity (namespace,
// mask, float64 bit pattern) is a fixed-width lowercase hex string, so
// export → import → export round-trips byte-identically and checksums are
// meaningful. Values are pure functions of their namespaced keys, so
// importing a snapshot can never change an optimization result — only how
// many oracle calls and cost recomputations reaching it costs.
type CacheSnapshot struct {
	// Version is the snapshot wire version (currently 1).
	Version int `json:"version"`
	// Scope is an owner-chosen label naming what the cache was learned
	// for (the serving tier uses the catalog pool key). Import verifies
	// it, so a snapshot for one catalog configuration cannot be merged
	// into a session serving another.
	Scope string `json:"scope"`
	// Namespaces holds the entries grouped by Searcher.Fingerprint(),
	// ascending by fingerprint.
	Namespaces []SnapshotNamespace `json:"namespaces"`
	// Checksum is the fixed-width hex FNV-1a hash of the canonical
	// content (version, scope, and every namespace and entry in order).
	Checksum string `json:"checksum"`
}

// SnapshotNamespace is one search-space namespace's entries.
type SnapshotNamespace struct {
	// NS is the 16-hex-digit searcher fingerprint the entries live under.
	NS string `json:"ns"`
	// Entries are the namespace's cache entries in canonical order:
	// ascending by (group, order, compute, mask). Benefit-oracle entries
	// use group -1 (see SharedCache.GetBenefit).
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one cached value. Mask and V are 16-hex-digit strings
// (the raw uint64 and the float64 bit pattern respectively) so no
// precision is lost to decimal formatting.
type SnapshotEntry struct {
	G       int    `json:"g"`
	Ord     int    `json:"ord"`
	Compute bool   `json:"compute"`
	Mask    string `json:"mask"`
	V       string `json:"v"`
}

// SnapshotError is the typed error every snapshot validation failure
// surfaces. Reason is one of "version", "scope", "checksum" or
// "malformed"; Detail says what exactly was wrong.
type SnapshotError struct {
	Reason string
	Detail string
}

func (e *SnapshotError) Error() string {
	return fmt.Sprintf("cache snapshot %s: %s", e.Reason, e.Detail)
}

func snapErrf(reason, format string, args ...any) *SnapshotError {
	return &SnapshotError{Reason: reason, Detail: fmt.Sprintf(format, args...)}
}

func hex16(v uint64) string { return fmt.Sprintf("%016x", v) }

func parseHex16(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	for i := 0; i < 16; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return 0, false
		}
	}
	v, err := strconv.ParseUint(s, 16, 64)
	return v, err == nil
}

// checksum hashes the canonical content. It deliberately covers the hex
// strings' decoded values, not the JSON bytes, so the checksum is a
// content hash independent of encoder whitespace.
func (s *CacheSnapshot) checksum() string {
	h := newFNV64()
	h.i(s.Version)
	h.str(s.Scope)
	h.i(len(s.Namespaces))
	for _, ns := range s.Namespaces {
		nsv, _ := parseHex16(ns.NS)
		h.u64(nsv)
		h.i(len(ns.Entries))
		for _, e := range ns.Entries {
			h.i(e.G)
			h.i(e.Ord)
			h.b(e.Compute)
			mv, _ := parseHex16(e.Mask)
			h.u64(mv)
			vv, _ := parseHex16(e.V)
			h.u64(vv)
		}
	}
	return hex16(uint64(h))
}

// Export snapshots every live entry under the given scope label. The
// result is canonical (sorted namespaces and entries, fixed-width hex),
// so equal cache contents always export to byte-identical encodings.
func (c *SharedCache) Export(scope string) *CacheSnapshot {
	ep := c.epoch.Load()
	byNS := make(map[uint64][]SnapshotEntry)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, e := range sh.m {
			if e.epoch != ep {
				continue
			}
			byNS[k.ns] = append(byNS[k.ns], SnapshotEntry{
				G:       int(k.k.g),
				Ord:     int(k.k.ord),
				Compute: k.k.compute,
				Mask:    hex16(k.k.mask),
				V:       hex16(math.Float64bits(e.v)),
			})
		}
		sh.mu.RUnlock()
	}
	snap := &CacheSnapshot{Version: snapshotVersion, Scope: scope}
	nss := make([]uint64, 0, len(byNS))
	for ns := range byNS {
		nss = append(nss, ns)
	}
	sort.Slice(nss, func(a, b int) bool { return nss[a] < nss[b] })
	for _, ns := range nss {
		entries := byNS[ns]
		sort.Slice(entries, func(a, b int) bool {
			return entryLess(&entries[a], &entries[b])
		})
		snap.Namespaces = append(snap.Namespaces, SnapshotNamespace{NS: hex16(ns), Entries: entries})
	}
	snap.Checksum = snap.checksum()
	return snap
}

// entryLess is the canonical entry order: ascending (G, Ord, Compute,
// Mask), with compute=false before compute=true. Mask compares as the
// decoded uint64, which for fixed-width hex equals string order.
func entryLess(a, b *SnapshotEntry) bool {
	if a.G != b.G {
		return a.G < b.G
	}
	if a.Ord != b.Ord {
		return a.Ord < b.Ord
	}
	if a.Compute != b.Compute {
		return !a.Compute
	}
	return a.Mask < b.Mask
}

// Import merges a snapshot into the cache, returning how many entries it
// carried. The snapshot's scope must equal the caller's expected scope and
// its version must be current — both checked before anything merges, with
// a typed *SnapshotError on mismatch. Malformed hex fields are likewise
// rejected up front, so an Import either merges everything or nothing.
func (c *SharedCache) Import(snap *CacheSnapshot, scope string) (int, error) {
	if snap == nil {
		return 0, snapErrf("malformed", "nil snapshot")
	}
	if snap.Version != snapshotVersion {
		return 0, snapErrf("version", "got %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Scope != scope {
		return 0, snapErrf("scope", "snapshot is for %q, importer expects %q", snap.Scope, scope)
	}
	type nsBatch struct {
		ns  uint64
		kvs []sharedKV
	}
	batches := make([]nsBatch, 0, len(snap.Namespaces))
	n := 0
	for i := range snap.Namespaces {
		nsStr := &snap.Namespaces[i]
		ns, ok := parseHex16(nsStr.NS)
		if !ok {
			return 0, snapErrf("malformed", "namespace %d: bad fingerprint %q", i, nsStr.NS)
		}
		kvs := make([]sharedKV, 0, len(nsStr.Entries))
		for j := range nsStr.Entries {
			e := &nsStr.Entries[j]
			mask, ok := parseHex16(e.Mask)
			if !ok {
				return 0, snapErrf("malformed", "namespace %s entry %d: bad mask %q", nsStr.NS, j, e.Mask)
			}
			bits, ok := parseHex16(e.V)
			if !ok {
				return 0, snapErrf("malformed", "namespace %s entry %d: bad value %q", nsStr.NS, j, e.V)
			}
			kvs = append(kvs, sharedKV{
				k: cacheKey{g: memo.GroupID(e.G), ord: ordID(e.Ord), compute: e.Compute, mask: mask},
				v: math.Float64frombits(bits),
			})
		}
		batches = append(batches, nsBatch{ns: ns, kvs: kvs})
		n += len(kvs)
	}
	for _, b := range batches {
		c.merge(b.ns, b.kvs)
	}
	return n, nil
}

// Encode renders the snapshot as canonical JSON (stable field order,
// two-space indent, trailing newline). Equal snapshots always encode to
// byte-identical output.
func (s *CacheSnapshot) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeCacheSnapshot strictly parses and fully validates a snapshot:
// unknown fields, a wrong version, malformed hex, out-of-order or
// duplicate keys, and checksum mismatches are all rejected with a typed
// *SnapshotError. A snapshot that decodes successfully re-encodes to the
// byte-identical input modulo JSON whitespace — and, because validation
// enforces canonical order, Encode of the decoded value is itself
// canonical.
func DecodeCacheSnapshot(data []byte) (*CacheSnapshot, error) {
	var snap CacheSnapshot
	if err := strictjson.Decode(data, &snap); err != nil {
		return nil, snapErrf("malformed", "%v", err)
	}
	if snap.Version != snapshotVersion {
		return nil, snapErrf("version", "got %d, want %d", snap.Version, snapshotVersion)
	}
	for i := range snap.Namespaces {
		ns := &snap.Namespaces[i]
		if _, ok := parseHex16(ns.NS); !ok {
			return nil, snapErrf("malformed", "namespace %d: bad fingerprint %q", i, ns.NS)
		}
		if i > 0 && !(snap.Namespaces[i-1].NS < ns.NS) {
			return nil, snapErrf("malformed", "namespace %q out of order after %q", ns.NS, snap.Namespaces[i-1].NS)
		}
		for j := range ns.Entries {
			e := &ns.Entries[j]
			if _, ok := parseHex16(e.Mask); !ok {
				return nil, snapErrf("malformed", "namespace %s entry %d: bad mask %q", ns.NS, j, e.Mask)
			}
			if _, ok := parseHex16(e.V); !ok {
				return nil, snapErrf("malformed", "namespace %s entry %d: bad value %q", ns.NS, j, e.V)
			}
			if j > 0 {
				prev := &ns.Entries[j-1]
				if !entryLess(prev, e) {
					return nil, snapErrf("malformed", "namespace %s entry %d out of canonical order", ns.NS, j)
				}
			}
		}
	}
	if want := snap.checksum(); snap.Checksum != want {
		return nil, snapErrf("checksum", "got %q, want %q", snap.Checksum, want)
	}
	return &snap, nil
}
