package physical

import (
	"context"
	"errors"
	"testing"

	"repro/internal/faultinject"
)

// TestFaultBatchPanicRecovered: an injected panic inside a bc(S) evaluation
// must never escape BestCostBatchCtx — on both the sequential and the
// worker-pool dispatch paths it aborts the batch, commits the exact prefix,
// and parks the typed fault on the searcher for TakeFault.
func TestFaultBatchPanicRecovered(t *testing.T) {
	ref := buildSearcher(t, sharedPairQueries()...)
	sh := ref.M.Shareable()
	var mats []NodeSet
	mats = append(mats, NodeSet{})
	for _, id := range sh {
		mats = append(mats, ref.NewNodeSet(id))
	}
	want := ref.BestCostBatch(mats)

	for _, par := range []int{1, 4} {
		s := buildSearcher(t, sharedPairQueries()...)
		s.Parallelism = par
		schedule := faultinject.NewSchedule(7, faultinject.Rule{
			Point: faultinject.OracleEval, N: 2, Panic: true,
		})
		restore := faultinject.Enable(schedule)
		got, ok := s.BestCostBatchCtx(context.Background(), mats)
		restore()
		if ok {
			t.Fatalf("par=%d: faulted batch reported ok", par)
		}
		if par == 1 && len(got) != 1 {
			t.Fatalf("par=1: prefix has %d results, want exactly the 1 before the panic", len(got))
		}
		if len(got) >= len(mats) {
			t.Fatalf("par=%d: faulted batch returned %d of %d results", par, len(got), len(mats))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("par=%d: prefix[%d] = %v, want %v", par, i, got[i], want[i])
			}
		}
		err := s.TakeFault()
		if err == nil {
			t.Fatalf("par=%d: no fault parked", par)
		}
		var pe *faultinject.PanicError
		if !errors.As(err, &pe) || pe.Site != "physical.BestCostBatch" {
			t.Fatalf("par=%d: fault = %#v, want *PanicError at physical.BestCostBatch", par, err)
		}
		var inj *faultinject.Injected
		if !errors.As(err, &inj) || inj.N != 2 {
			t.Fatalf("par=%d: fault does not unwrap to the injection: %v", par, err)
		}
		if s.TakeFault() != nil {
			t.Errorf("par=%d: TakeFault did not clear the fault", par)
		}
	}
}

// TestFaultFreeReplayBitIdentical: with the schedule removed, the same
// searcher inputs replay to exactly the same costs — the determinism anchor
// the chaos suite's replay assertions build on.
func TestFaultFreeReplayBitIdentical(t *testing.T) {
	s := buildSearcher(t, sharedPairQueries()...)
	sh := s.M.Shareable()
	var mats []NodeSet
	for _, id := range sh {
		mats = append(mats, s.NewNodeSet(id))
	}
	s.Parallelism = 4
	a, ok := s.BestCostBatchCtx(context.Background(), mats)
	if !ok {
		t.Fatal("first run aborted")
	}
	b, ok := s.BestCostBatchCtx(context.Background(), mats)
	if !ok {
		t.Fatal("second run aborted")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("replay diverged at %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestFingerprintStableAndFlagSensitive: the fingerprint is a pure function
// of the compiled search space and moves when a cost-relevant flag toggles
// — the property checkpoint validation relies on.
func TestFingerprintStableAndFlagSensitive(t *testing.T) {
	a := buildSearcher(t, sharedPairQueries()...)
	b := buildSearcher(t, sharedPairQueries()...)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical search spaces have different fingerprints")
	}
	fp := a.Fingerprint()
	a.ExtendedOps = true
	if a.Fingerprint() == fp {
		t.Error("ExtendedOps toggle did not move the fingerprint")
	}
	a.ExtendedOps = false
	if a.Fingerprint() != fp {
		t.Error("fingerprint did not return after the toggle")
	}
}
