// Package strictjson decodes JSON with the strictness a network wire
// format wants: unknown fields are errors (a typoed knob must never
// silently fall back to a default) and so is trailing data after the
// value. Every wire decoder in the module — the serving front end's
// request body, the workload spec, the mqoserver tenant table — goes
// through Decode so the surfaces cannot drift apart in strictness.
package strictjson

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
)

// Decode parses exactly one JSON value from data into v, rejecting
// unknown fields and trailing non-whitespace.
func Decode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return errors.New("trailing data after JSON value")
	}
	return nil
}
