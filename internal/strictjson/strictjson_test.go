package strictjson

import "testing"

func TestDecode(t *testing.T) {
	type target struct {
		A int    `json:"a"`
		B string `json:"b,omitempty"`
	}
	cases := []struct {
		name  string
		input string
		ok    bool
	}{
		{"valid", `{"a": 1, "b": "x"}`, true},
		{"valid with whitespace", " {\"a\": 1}\n\t ", true},
		{"unknown field", `{"a": 1, "zz": 2}`, false},
		{"trailing value", `{"a": 1} {"a": 2}`, false},
		{"trailing garbage", `{"a": 1} nonsense`, false},
		{"wrong type", `{"a": "one"}`, false},
		{"truncated", `{"a": 1`, false},
		{"empty", ``, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var v target
			err := Decode([]byte(tc.input), &v)
			if (err == nil) != tc.ok {
				t.Fatalf("Decode(%q) error = %v, want ok=%v", tc.input, err, tc.ok)
			}
		})
	}
}
