// Package faultinject is the deterministic fault-injection backbone of the
// chaos test suites: a process-wide, atomically installed Schedule of
// injection Rules that fire at exact hit counts of named injection Points
// sprinkled through the optimizer core (oracle evaluations, greedy round
// boundaries, executor tasks) and the serving tier (session-pool lookups
// and evictions).
//
// Production behavior is a strict no-op: with no schedule installed every
// Hit call is a single atomic pointer load that returns immediately, so
// the injection sites cost nothing measurable on the hot paths they
// instrument. Tests install a Schedule with Enable, which returns a
// restore function; schedules are never installed outside tests.
//
// Determinism is the point. A Rule fires at the Nth hit of its point —
// counters are per-schedule and atomic — so a given (workload seed,
// schedule) pair replays the same fault at the same place every run, and a
// fault-free replay of the same seed is bit-identical to an undisturbed
// run. The Seed field tags the schedule for replay bookkeeping; chaos
// tests derive their rule positions from it.
//
// The package also owns PanicError, the typed recover-to-error carrier the
// fault-tolerance layer propagates instead of letting a worker-goroutine
// panic kill the process: the recovered value plus the stack captured at
// the recovery site.
package faultinject

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Point names one injection site.
type Point uint8

// Injection points.
const (
	// OracleEval fires before each bc(S) evaluation of a batched oracle
	// round (physical.Searcher.BestCostBatchCtx, serial and parallel).
	OracleEval Point = iota
	// Round fires at each greedy round boundary (submod.lazyMaximize),
	// after budget checks and before the round's oracle work.
	Round
	// ExecTask fires before each wavefront task of the parallel executor
	// (exec.Engine).
	ExecTask
	// PoolGet fires on each session-pool acquire (internal/server).
	PoolGet
	// PoolEvict fires inside session-pool eviction, while the pool lock is
	// held released — used to widen eviction races.
	PoolEvict
	numPoints
)

// String implements fmt.Stringer.
func (p Point) String() string {
	switch p {
	case OracleEval:
		return "oracle-eval"
	case Round:
		return "round"
	case ExecTask:
		return "exec-task"
	case PoolGet:
		return "pool-get"
	case PoolEvict:
		return "pool-evict"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// Rule is one scheduled fault: at the Nth hit of Point (1-based; N = 0
// means every hit), run Fn (if any), sleep Delay (if any), then panic with
// an *Injected (if Panic). Fn runs on the goroutine that hit the point, so
// a rule can cancel a context at round k, invalidate a cache mid-run, or
// block to widen a race window.
type Rule struct {
	Point Point
	N     int64
	Panic bool
	Delay time.Duration
	Fn    func()
}

// Schedule is a set of rules with per-point hit counters. Install with
// Enable; a schedule must not be reused across Enable calls (its counters
// carry state).
type Schedule struct {
	seed     int64
	rules    [numPoints][]Rule
	counters [numPoints]atomic.Int64
}

// NewSchedule builds a schedule. The seed does not drive anything inside
// the package — rules fire at their explicit Ns — but tags the schedule so
// chaos tests that derived their rule positions from a seeded source can
// name the replay.
func NewSchedule(seed int64, rules ...Rule) *Schedule {
	s := &Schedule{seed: seed}
	for _, r := range rules {
		if r.Point >= numPoints {
			panic(fmt.Sprintf("faultinject: unknown point %d", r.Point))
		}
		s.rules[r.Point] = append(s.rules[r.Point], r)
	}
	return s
}

// Seed returns the schedule's tag.
func (s *Schedule) Seed() int64 { return s.seed }

// Hits reports how many times a point has been hit under this schedule.
func (s *Schedule) Hits(p Point) int64 { return s.counters[p].Load() }

// active is the installed schedule; nil in production.
var active atomic.Pointer[Schedule]

// Enable installs the schedule process-wide and returns a function that
// restores the previous state. Tests only; callers must restore before
// the test ends so schedules never leak across tests.
func Enable(s *Schedule) (restore func()) {
	prev := active.Swap(s)
	return func() { active.Store(prev) }
}

// Enabled reports whether a schedule is installed (chaos tests assert
// their cleanup ran).
func Enabled() bool { return active.Load() != nil }

// Hit is the injection-site entry point. With no schedule installed it is
// a single atomic load; with one, it counts the hit and fires every
// matching rule in order.
func Hit(p Point) {
	s := active.Load()
	if s == nil {
		return
	}
	s.hit(p)
}

func (s *Schedule) hit(p Point) {
	n := s.counters[p].Add(1)
	for i := range s.rules[p] {
		r := &s.rules[p][i]
		if r.N != 0 && r.N != n {
			continue
		}
		if r.Fn != nil {
			r.Fn()
		}
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		if r.Panic {
			panic(&Injected{Point: p, N: n, Seed: s.seed})
		}
	}
}

// Injected is the panic value of a scheduled panic rule; chaos tests
// assert the recovered PanicError wraps one.
type Injected struct {
	Point Point
	N     int64
	Seed  int64
}

// Error implements error.
func (e *Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s hit %d (seed %d)", e.Point, e.N, e.Seed)
}

// PanicError is a recovered panic turned into an error: the fault-
// tolerance layer's typed carrier. Worker goroutines in the oracle scan
// and the executor recover panics into one of these and propagate it as an
// ordinary error instead of crashing the process; the serving tier turns
// it into a 500 with an incident id and quarantines the owning session.
type PanicError struct {
	// Site names where the panic was recovered, e.g. "physical.BestCostBatch".
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at the recovery site.
	Stack []byte
}

// NewPanicError captures the current stack around a recovered value.
func NewPanicError(site string, value any) *PanicError {
	return &PanicError{Site: site, Value: value, Stack: debug.Stack()}
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Site, e.Value)
}

// Unwrap exposes a panic value that was itself an error (an *Injected,
// for instance) to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}
