package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestHitNoScheduleIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("schedule installed at test start")
	}
	Hit(OracleEval) // must not panic or count anything
}

func TestRuleFiresAtExactHit(t *testing.T) {
	s := NewSchedule(42, Rule{Point: OracleEval, N: 3, Panic: true})
	restore := Enable(s)
	defer restore()
	if !Enabled() {
		t.Fatal("Enable did not install the schedule")
	}
	Hit(OracleEval)
	Hit(OracleEval)
	Hit(Round) // other points do not advance this counter
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("third hit did not panic")
			}
			inj, ok := r.(*Injected)
			if !ok {
				t.Fatalf("panic value %T, want *Injected", r)
			}
			if inj.Point != OracleEval || inj.N != 3 || inj.Seed != 42 {
				t.Fatalf("injected = %+v", inj)
			}
		}()
		Hit(OracleEval)
	}()
	Hit(OracleEval) // hit 4: rule pinned to 3 no longer fires
	if got := s.Hits(OracleEval); got != 4 {
		t.Errorf("Hits(OracleEval) = %d, want 4", got)
	}
	if got := s.Hits(Round); got != 1 {
		t.Errorf("Hits(Round) = %d, want 1", got)
	}
}

func TestEveryHitRuleAndFnAndDelay(t *testing.T) {
	fired := 0
	s := NewSchedule(0,
		Rule{Point: Round, Fn: func() { fired++ }},
		Rule{Point: PoolGet, N: 1, Delay: time.Millisecond},
	)
	restore := Enable(s)
	defer restore()
	for i := 0; i < 5; i++ {
		Hit(Round)
	}
	if fired != 5 {
		t.Errorf("N=0 rule fired %d times, want every hit (5)", fired)
	}
	start := time.Now()
	Hit(PoolGet)
	if time.Since(start) < time.Millisecond {
		t.Error("delay rule did not sleep")
	}
}

func TestEnableRestoresPreviousSchedule(t *testing.T) {
	outer := NewSchedule(1)
	restoreOuter := Enable(outer)
	inner := NewSchedule(2)
	restoreInner := Enable(inner)
	Hit(ExecTask)
	restoreInner()
	Hit(ExecTask)
	restoreOuter()
	if inner.Hits(ExecTask) != 1 || outer.Hits(ExecTask) != 1 {
		t.Errorf("hits inner=%d outer=%d, want 1 and 1", inner.Hits(ExecTask), outer.Hits(ExecTask))
	}
	if Enabled() {
		t.Error("restore left a schedule installed")
	}
}

func TestPanicErrorCapturesStackAndUnwraps(t *testing.T) {
	inj := &Injected{Point: OracleEval, N: 7, Seed: 9}
	pe := NewPanicError("test.site", inj)
	if !strings.Contains(pe.Error(), "test.site") {
		t.Errorf("Error() = %q, want the site name", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	var got *Injected
	if !errors.As(pe, &got) || got.N != 7 {
		t.Errorf("errors.As failed to recover the injected cause: %v", pe)
	}
	// Non-error panic values unwrap to nil without exploding.
	if err := NewPanicError("x", "boom").Unwrap(); err != nil {
		t.Errorf("string panic unwrapped to %v", err)
	}
}

func TestUnknownPointRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSchedule accepted an out-of-range point")
		}
	}()
	NewSchedule(0, Rule{Point: numPoints})
}
