package workload

import (
	"encoding/json"
	"fmt"

	"repro/internal/strictjson"
)

// specWire is the JSON shape of a Spec: the shape travels by name
// ("star", "chain", "snowflake", "mixed"), everything else as plain
// numbers. It exists so the Go-side Spec can keep its typed Shape while
// the wire stays self-describing.
type specWire struct {
	Seed       int64   `json:"seed"`
	Queries    int     `json:"queries"`
	Shape      string  `json:"shape"`
	FanOut     int     `json:"fan_out"`
	Sharing    float64 `json:"sharing"`
	SelectFrac float64 `json:"select_frac"`
	AggFrac    float64 `json:"agg_frac"`
	Skew       float64 `json:"skew"`
}

// MarshalJSON renders the spec in its wire shape.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(specWire{
		Seed:       s.Seed,
		Queries:    s.Queries,
		Shape:      s.Shape.String(),
		FanOut:     s.FanOut,
		Sharing:    s.Sharing,
		SelectFrac: s.SelectFrac,
		AggFrac:    s.AggFrac,
		Skew:       s.Skew,
	})
}

// UnmarshalJSON parses the wire shape strictly: unknown fields and unknown
// shape names are errors, so a typoed knob can never silently fall back to
// a default. An absent "shape" means Star (the zero Shape). Range checks
// beyond well-formedness stay in Validate.
func (s *Spec) UnmarshalJSON(data []byte) error {
	var w specWire
	if err := strictjson.Decode(data, &w); err != nil {
		return fmt.Errorf("workload: decoding spec: %w", err)
	}
	shape := Star
	if w.Shape != "" {
		var err error
		if shape, err = ParseShape(w.Shape); err != nil {
			return err
		}
	}
	*s = Spec{
		Seed:       w.Seed,
		Queries:    w.Queries,
		Shape:      shape,
		FanOut:     w.FanOut,
		Sharing:    w.Sharing,
		SelectFrac: w.SelectFrac,
		AggFrac:    w.AggFrac,
		Skew:       w.Skew,
	}
	return nil
}

// DecodeSpec parses one JSON-encoded Spec from the wire and validates it.
// It is strict end to end — unknown fields, trailing garbage, malformed
// JSON and out-of-range knobs all return an error — and never panics, so a
// network front end can map any failure to a 4xx. The returned spec is
// ready for Generate.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	if err := strictjson.Decode(data, &s); err != nil {
		return Spec{}, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
