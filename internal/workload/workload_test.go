package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// TestWorkloadDeterminism: the same spec must generate byte-identical
// batches, and the seed must actually matter.
func TestWorkloadDeterminism(t *testing.T) {
	for _, spec := range []Spec{
		DefaultSpec(16, 0.75),
		{Seed: 7, Queries: 9, Shape: Star, FanOut: 4, Sharing: 0.3, SelectFrac: 1, AggFrac: 1},
		{Seed: 7, Queries: 9, Shape: Chain, FanOut: 6, Sharing: 0, SelectFrac: 0.5, AggFrac: 0},
		{Seed: 7, Queries: 9, Shape: Snowflake, FanOut: 8, Sharing: 1, SelectFrac: 0.9, AggFrac: 0.5},
	} {
		a := Fingerprint(MustGenerate(spec))
		b := Fingerprint(MustGenerate(spec))
		if a != b {
			t.Fatalf("spec %+v: two generations differ:\n%s\nvs\n%s", spec, a, b)
		}
		spec2 := spec
		spec2.Seed++
		if Fingerprint(MustGenerate(spec2)) == a {
			t.Errorf("spec %+v: changing the seed left the batch identical", spec)
		}
	}
}

// TestWorkloadQueriesDistinct: even at maximal sharing no two generated
// queries may be identical — the per-query variant constant (a distinct
// real on a range column) must keep them apart, exactly like the paper's
// BQ variant pairs. The chain shape at 60 queries is the regression case:
// rotating the variant onto an equality column (region.name, 5 categories)
// used to floor-collide constants and emit duplicate queries.
func TestWorkloadQueriesDistinct(t *testing.T) {
	for _, shape := range []Shape{Star, Chain, Snowflake, Mixed} {
		spec := Spec{Seed: 3, Queries: 60, Shape: shape, FanOut: MaxFanOut(shape),
			Sharing: 1, SelectFrac: 1, AggFrac: 0.5}
		batch := MustGenerate(spec)
		seen := map[string]string{}
		for _, q := range batch.Queries {
			fp := Fingerprint(&logical.Batch{Queries: []*logical.Query{{Name: "", Root: q.Root}}})
			if prev, dup := seen[fp]; dup {
				t.Errorf("%s: queries %s and %s are identical", shape, prev, q.Name)
			}
			seen[fp] = q.Name
		}
	}
}

// TestWorkloadSpecValidation: malformed specs must be rejected with an
// error, not generate garbage.
func TestWorkloadSpecValidation(t *testing.T) {
	valid := DefaultSpec(4, 0.5)
	if err := valid.Validate(); err != nil {
		t.Fatalf("DefaultSpec invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero queries", func(s *Spec) { s.Queries = 0 }},
		{"negative queries", func(s *Spec) { s.Queries = -3 }},
		{"fanout too small", func(s *Spec) { s.FanOut = 1 }},
		{"fanout beyond star", func(s *Spec) { s.Shape = Star; s.FanOut = MaxFanOut(Star) + 1 }},
		{"fanout beyond chain", func(s *Spec) { s.Shape = Chain; s.FanOut = MaxFanOut(Chain) + 1 }},
		{"sharing below range", func(s *Spec) { s.Sharing = -0.01 }},
		{"sharing above range", func(s *Spec) { s.Sharing = 1.01 }},
		{"select frac above range", func(s *Spec) { s.SelectFrac = 2 }},
		{"agg frac below range", func(s *Spec) { s.AggFrac = -1 }},
		{"unknown shape", func(s *Spec) { s.Shape = Mixed + 1 }},
	}
	for _, tc := range cases {
		spec := valid
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, spec)
		}
		if _, err := Generate(spec); err == nil {
			t.Errorf("%s: Generate accepted %+v", tc.name, spec)
		}
	}
}

// TestWorkloadValidatesAgainstCatalog: every generated query must pass
// logical validation against the TPCD catalog for all shapes and fan-outs.
func TestWorkloadValidatesAgainstCatalog(t *testing.T) {
	cat := tpcd.Catalog(1)
	for _, shape := range []Shape{Star, Chain, Snowflake, Mixed} {
		for fanOut := 2; fanOut <= MaxFanOut(shape); fanOut++ {
			spec := DefaultSpec(6, 0.5)
			spec.Shape = shape
			spec.FanOut = fanOut
			batch := MustGenerate(spec)
			if len(batch.Queries) != spec.Queries {
				t.Fatalf("%s/%d: got %d queries, want %d", shape, fanOut, len(batch.Queries), spec.Queries)
			}
			for _, q := range batch.Queries {
				if err := q.Validate(cat); err != nil {
					t.Errorf("%s/%d: query %s invalid: %v", shape, fanOut, q.Name, err)
				}
			}
		}
	}
}

// TestWorkloadRoundTrip: a generated batch must optimize end to end —
// DAG build, MarginalGreedy, plan extraction — and the extracted plan must
// pass the independent cost audit.
func TestWorkloadRoundTrip(t *testing.T) {
	cat := tpcd.Catalog(1)
	spec := DefaultSpec(12, 0.75)
	batch := MustGenerate(spec)
	opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Run(opt, core.MarginalGreedy)
	if res.Cost > res.VolcanoCost+1e-6 {
		t.Errorf("MarginalGreedy cost %v exceeds no-MQO cost %v", res.Cost, res.VolcanoCost)
	}
	plan := opt.Plan(res.MatSet())
	if plan == nil {
		t.Fatal("nil consolidated plan")
	}
	if err := opt.Searcher.ValidatePlan(plan, res.MatSet()); err != nil {
		t.Errorf("extracted plan fails validation: %v", err)
	}
	if d := plan.Total - res.Cost; d > 1e-6 || d < -1e-6 {
		t.Errorf("plan total %v != oracle cost %v", plan.Total, res.Cost)
	}
}

// TestWorkloadSharingGrowsUnification: the sharing coefficient must move
// the quantities it exists to control — higher sharing unifies more
// subexpressions (a smaller combined DAG for the same query count) and
// raises the relative MQO benefit.
func TestWorkloadSharingGrowsUnification(t *testing.T) {
	cat := tpcd.Catalog(1)
	run := func(sharing float64) (groups int, relBenefit float64) {
		spec := DefaultSpec(16, sharing)
		opt, err := volcano.NewOptimizer(cat, cost.Default(), MustGenerate(spec))
		if err != nil {
			t.Fatal(err)
		}
		r := core.Run(opt, core.MarginalGreedy)
		return opt.Memo.NumGroups(), r.Benefit / r.VolcanoCost
	}
	loGroups, loBenefit := run(0)
	hiGroups, hiBenefit := run(1)
	if hiGroups >= loGroups {
		t.Errorf("DAG did not shrink with sharing: %d groups at σ=0, %d at σ=1", loGroups, hiGroups)
	}
	if hiBenefit <= loBenefit {
		t.Errorf("relative MQO benefit did not grow with sharing: %.3f at σ=0, %.3f at σ=1",
			loBenefit, hiBenefit)
	}
}

// TestWorkloadParitySerialBatched: Greedy and MarginalGreedy must pick the
// same materialization set and cost whether the oracle rounds run serially
// (Parallelism 1) or on the concurrent batched path.
func TestWorkloadParitySerialBatched(t *testing.T) {
	cat := tpcd.Catalog(1)
	batch := MustGenerate(DefaultSpec(8, 0.75))
	for _, strat := range []core.Strategy{core.Greedy, core.MarginalGreedy} {
		run := func(par int) core.Result {
			opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
			if err != nil {
				t.Fatal(err)
			}
			opt.Searcher.Parallelism = par
			return core.Run(opt, strat)
		}
		serial, batched := run(1), run(4)
		if serial.Cost != batched.Cost {
			t.Errorf("%s: serial cost %v != batched cost %v", strat, serial.Cost, batched.Cost)
		}
		if fmt.Sprint(serial.Materialized) != fmt.Sprint(batched.Materialized) {
			t.Errorf("%s: serial materializations %v != batched %v",
				strat, serial.Materialized, batched.Materialized)
		}
	}
}

// TestWorkloadSkewDeterminism: the skew knob must keep generation
// deterministic — same spec, same batch — while actually changing the
// batch relative to Skew=0, and skewed batches must still be valid and
// pairwise distinct (the variant constant keeps the hot cohort apart).
func TestWorkloadSkewDeterminism(t *testing.T) {
	spec := DefaultSpec(24, 0.5)
	spec.Skew = 0.8
	a := Fingerprint(MustGenerate(spec))
	if b := Fingerprint(MustGenerate(spec)); a != b {
		t.Fatal("skewed generations from one seed differ")
	}
	flat := spec
	flat.Skew = 0
	if Fingerprint(MustGenerate(flat)) == a {
		t.Error("Skew=0.8 generated the same batch as Skew=0")
	}
	cat := tpcd.Catalog(1)
	batch := MustGenerate(spec)
	seen := map[string]bool{}
	for _, q := range batch.Queries {
		if err := q.Validate(cat); err != nil {
			t.Errorf("skewed query %s invalid: %v", q.Name, err)
		}
		fp := Fingerprint(&logical.Batch{Queries: []*logical.Query{{Name: "", Root: q.Root}}})
		if seen[fp] {
			t.Errorf("skewed batch repeats query %s", q.Name)
		}
		seen[fp] = true
	}
}

// TestWorkloadSkewConcentratesSharing: the knob exists to concentrate the
// combined DAG — the hot cohort unifies into one template's groups, so a
// fully skewed batch must compile to fewer groups than an unskewed one.
func TestWorkloadSkewConcentratesSharing(t *testing.T) {
	cat := tpcd.Catalog(1)
	groups := func(skew float64) int {
		spec := DefaultSpec(24, 0.5)
		spec.Skew = skew
		opt, err := volcano.NewOptimizer(cat, cost.Default(), MustGenerate(spec))
		if err != nil {
			t.Fatal(err)
		}
		return opt.Memo.NumGroups()
	}
	lo, hi := groups(0), groups(1)
	if hi >= lo {
		t.Errorf("full skew did not concentrate the DAG: %d groups at Skew=0, %d at Skew=1", lo, hi)
	}
}

// TestWorkloadSkewZeroGolden pins the Skew=0 random stream: adding the
// knob (or any future one) must leave previously generated batches
// byte-identical. The digest was produced by the generator before the
// Skew field existed.
func TestWorkloadSkewZeroGolden(t *testing.T) {
	const want = "4b24082210e0262488ebb01e79164601894fa3a0a2e6beffe5c70f63140e0eeb"
	fp := sha256.Sum256([]byte(Fingerprint(MustGenerate(DefaultSpec(64, 0.25)))))
	if got := hex.EncodeToString(fp[:]); got != want {
		t.Fatalf("DefaultSpec(64, 0.25) fingerprint drifted:\n got %s\nwant %s", got, want)
	}
}

// TestWorkloadRunDeterminism: the full pipeline — generation plus
// optimization — must reproduce the same materialization set across runs
// from one seed.
func TestWorkloadRunDeterminism(t *testing.T) {
	cat := tpcd.Catalog(1)
	spec := DefaultSpec(10, 0.5)
	run := func() core.Result {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), MustGenerate(spec))
		if err != nil {
			t.Fatal(err)
		}
		return core.Run(opt, core.MarginalGreedy)
	}
	a, b := run(), run()
	if a.Cost != b.Cost || fmt.Sprint(a.Materialized) != fmt.Sprint(b.Materialized) {
		t.Errorf("two runs from one seed diverge: %v/%v vs %v/%v",
			a.Cost, a.Materialized, b.Cost, b.Materialized)
	}
}
