// Package workload is a seeded, deterministic generator of synthetic query
// batches over the TPCD catalog, used to stress the multi-query optimizer
// beyond the paper's BQ1–BQ6 composites (dozens to hundreds of queries per
// batch instead of twelve).
//
// A Spec describes a batch by template rather than by listing queries:
//
//   - Shape picks the join structure of every query — Star (a fact table
//     joined to its direct foreign-key neighbors), Chain (a linear
//     foreign-key path), Snowflake (a star whose dimensions carry their own
//     dimensions), or Mixed (round-robin over the three);
//   - FanOut is the number of relations each query joins (2..MaxFanOut of
//     the shape);
//   - SelectFrac is the probability that a scan carries a selection
//     predicate, and AggFrac the probability that a query is topped by a
//     group-by aggregation;
//   - Sharing is the knob the paper's sharing regime generalizes: every
//     query varies the selection constant on one designated "variant" scan
//     (as the BQ pairs do), and each remaining filtered scan draws its
//     constant from a batch-wide shared pool with probability Sharing, or
//     fresh per query otherwise. At Sharing=1 the queries of a template
//     differ in exactly one constant, so almost every subexpression unifies
//     in the combined LQDAG; at Sharing=0 the leaves rarely unify and the
//     DAG approaches the disjoint union of the per-query plan spaces.
//
// Generation is a pure function of the Spec: the same Spec (seed included)
// produces a byte-identical batch, which Fingerprint makes checkable.
// Generated batches validate against tpcd.Catalog and round-trip through
// volcano.NewOptimizer → core.Run → physical plan extraction.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/tpcd"
)

// Shape selects the join structure of generated queries.
type Shape int

// Shapes.
const (
	// Star joins the lineitem fact table to its direct foreign-key
	// neighbors (orders, part, supplier, partsupp).
	Star Shape = iota
	// Chain follows the linear foreign-key path
	// supplier—lineitem—orders—customer—nation—region.
	Chain
	// Snowflake is the star extended with second-level dimensions
	// (orders→customer→nation→region).
	Snowflake
	// Mixed rotates through Star, Chain and Snowflake query by query.
	Mixed
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case Star:
		return "star"
	case Chain:
		return "chain"
	case Snowflake:
		return "snowflake"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// ParseShape parses a shape name as used on the command line.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "star":
		return Star, nil
	case "chain":
		return Chain, nil
	case "snowflake":
		return Snowflake, nil
	case "mixed":
		return Mixed, nil
	}
	return 0, fmt.Errorf("workload: unknown shape %q (want star, chain, snowflake or mixed)", s)
}

// MaxFanOut returns the largest FanOut the shape supports (the number of
// distinct tables its template reaches).
func MaxFanOut(s Shape) int {
	switch s {
	case Star:
		return len(starSteps)
	case Chain:
		return len(chainSteps)
	default: // Snowflake and Mixed reach the full snowflake template.
		return len(snowflakeSteps)
	}
}

// Spec parameterizes one generated batch. The zero value is invalid; start
// from DefaultSpec.
type Spec struct {
	// Seed seeds the generator; equal Specs generate byte-identical
	// batches.
	Seed int64
	// Queries is the batch size (≥ 1).
	Queries int
	// Shape is the join structure of every query.
	Shape Shape
	// FanOut is the number of relations per query, 2..MaxFanOut(Shape).
	// For Mixed, shapes with a smaller template clamp it.
	FanOut int
	// Sharing in [0,1] is the probability that a filtered scan draws its
	// selection constant from the batch-wide shared pool instead of a
	// fresh per-query constant. Higher values mean more LQDAG unification.
	Sharing float64
	// SelectFrac in [0,1] is the probability that a non-variant scan with
	// a filterable column carries a selection predicate. The variant scan
	// always does.
	SelectFrac float64
	// AggFrac in [0,1] is the probability that a query is topped by a
	// group-by aggregation.
	AggFrac float64
	// Skew in [0,1] is the probability that a query is "hot": generated
	// from the batch's one hot template (the star shape at this spec's
	// fan-out) with every non-variant filter drawn deterministically from
	// the shared pool, so hot queries unify into the same combined-DAG
	// groups and differ only in their variant constant. High skew is the
	// adversarial case for per-(group, order) cost caches — the greedy
	// scan concentrates on few hot groups and drives many distinct
	// materialization masks into their buckets. 0 (the default) disables
	// the knob and generates byte-identical batches to earlier versions.
	Skew float64
}

// DefaultSpec returns the spec the stress benchmarks use: star-dominated
// mixed shapes of fan-out 4, selective scans, and half the queries
// aggregated.
func DefaultSpec(queries int, sharing float64) Spec {
	return Spec{
		Seed:       1,
		Queries:    queries,
		Shape:      Mixed,
		FanOut:     4,
		Sharing:    sharing,
		SelectFrac: 0.8,
		AggFrac:    0.5,
	}
}

// Validate checks the spec's parameters.
func (s Spec) Validate() error {
	if s.Queries < 1 {
		return fmt.Errorf("workload: Queries must be ≥ 1, got %d", s.Queries)
	}
	if s.FanOut < 2 {
		return fmt.Errorf("workload: FanOut must be ≥ 2, got %d", s.FanOut)
	}
	if max := MaxFanOut(s.Shape); s.FanOut > max {
		return fmt.Errorf("workload: FanOut %d exceeds MaxFanOut(%s) = %d", s.FanOut, s.Shape, max)
	}
	if s.Shape < Star || s.Shape > Mixed {
		return fmt.Errorf("workload: unknown shape %d", int(s.Shape))
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"Sharing", s.Sharing}, {"SelectFrac", s.SelectFrac}, {"AggFrac", s.AggFrac}, {"Skew", s.Skew}} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload: %s must be in [0,1], got %v", f.name, f.v)
		}
	}
	return nil
}

// step is one table of a shape template: scanned under Alias and joined to
// the already-placed JoinTo alias (empty for the root).
type step struct {
	Table  string
	Alias  string
	JoinTo string // alias of the table this one joins to
}

// The shape templates. Each step after the first attaches to an earlier
// step through a foreign-key edge of the TPCD schema (tpcd.JoinEdges), so
// every prefix is a connected join graph.
var (
	starSteps = []step{
		{Table: "lineitem", Alias: "l"},
		{Table: "orders", Alias: "o", JoinTo: "l"},
		{Table: "part", Alias: "p", JoinTo: "l"},
		{Table: "supplier", Alias: "s", JoinTo: "l"},
		{Table: "partsupp", Alias: "ps", JoinTo: "l"},
	}
	chainSteps = []step{
		{Table: "supplier", Alias: "s"},
		{Table: "lineitem", Alias: "l", JoinTo: "s"},
		{Table: "orders", Alias: "o", JoinTo: "l"},
		{Table: "customer", Alias: "c", JoinTo: "o"},
		{Table: "nation", Alias: "n", JoinTo: "c"},
		{Table: "region", Alias: "r", JoinTo: "n"},
	}
	snowflakeSteps = []step{
		{Table: "lineitem", Alias: "l"},
		{Table: "orders", Alias: "o", JoinTo: "l"},
		{Table: "part", Alias: "p", JoinTo: "l"},
		{Table: "supplier", Alias: "s", JoinTo: "l"},
		{Table: "customer", Alias: "c", JoinTo: "o"},
		{Table: "nation", Alias: "n", JoinTo: "c"},
		{Table: "region", Alias: "r", JoinTo: "n"},
		{Table: "partsupp", Alias: "ps", JoinTo: "l"},
	}
)

func stepsFor(s Shape, fanOut int) []step {
	var t []step
	switch s {
	case Star:
		t = starSteps
	case Chain:
		t = chainSteps
	default:
		t = snowflakeSteps
	}
	if fanOut > len(t) {
		fanOut = len(t)
	}
	return t[:fanOut]
}

// queryShape resolves the concrete shape of the i-th query.
func (s Spec) queryShape(i int) Shape {
	if s.Shape != Mixed {
		return s.Shape
	}
	return []Shape{Star, Chain, Snowflake}[i%3]
}

// Generate emits the batch described by the spec. It is deterministic:
// equal specs produce byte-identical batches (see Fingerprint).
func Generate(spec Spec) (*logical.Batch, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	filters := tpcd.FilterColumns()

	// The batch-wide shared constant pool: one constant per filter column
	// of every filterable table, drawn up front in sorted table order so
	// per-query draws cannot shift it — and so every key a template can
	// ever look up exists (no silent zero constants).
	shared := map[string]float64{}
	tables := make([]string, 0, len(filters))
	for table := range filters {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	for _, table := range tables {
		for _, fc := range filters[table] {
			shared[table+"."+fc.Column] = constant(fc, rng.Float64())
		}
	}

	batch := &logical.Batch{}
	for qi := 0; qi < spec.Queries; qi++ {
		shape := spec.queryShape(qi)
		// The skew draw happens only when the knob is on, so Skew=0 leaves
		// the generator's random stream — and therefore every previously
		// generated batch — byte-identical.
		hot := false
		if spec.Skew > 0 && rng.Float64() < spec.Skew {
			hot = true
			shape = Star
		}
		steps := stepsFor(shape, spec.FanOut)

		bb := logical.NewBlock()
		for _, st := range steps {
			bb.Scan(st.Table, st.Alias)
		}
		for _, st := range steps {
			if st.JoinTo == "" {
				continue
			}
			to := aliasOf(steps, st.JoinTo)
			edge, ok := tpcd.EdgeBetween(st.Table, to.Table)
			if !ok {
				return nil, fmt.Errorf("workload: no schema edge %s–%s (template bug)", st.Table, to.Table)
			}
			for _, cols := range edge.Cols {
				l, r := cols[0], cols[1]
				if edge.Left != st.Table { // edge stored in the other orientation
					l, r = r, l
				}
				bb.Join(st.Alias+"."+l, to.Alias+"."+r)
			}
		}

		// The variant scan rotates over the query's range-filterable tables
		// and always gets a per-query constant — the generalization of the
		// BQ variant pairs. Restricting the rotation to range columns keeps
		// the variant constants distinct reals (equality categories would
		// floor-collide once Queries exceeds the category count), so no two
		// queries of a batch are identical.
		vi := variantStep(steps, qi, filters)
		for si, st := range steps {
			fcs := filters[st.Table]
			if len(fcs) == 0 {
				continue
			}
			switch {
			case si == vi:
				fc := rangeFilter(fcs)
				bb.Cmp(st.Alias+"."+fc.Column, opFor(fc), constant(fc, variantFrac(qi, spec.Queries)))
			case hot:
				// Hot queries filter every filterable scan with the shared
				// constant of the table's first filter column — no random
				// draws — so the whole non-variant subtree unifies across
				// the hot cohort.
				fc := fcs[0]
				bb.Cmp(st.Alias+"."+fc.Column, opFor(fc), shared[st.Table+"."+fc.Column])
			case rng.Float64() < spec.SelectFrac:
				fc := fcs[rng.Intn(len(fcs))]
				var v float64
				if rng.Float64() < spec.Sharing {
					v = shared[st.Table+"."+fc.Column]
				} else {
					v = constant(fc, rng.Float64())
				}
				bb.Cmp(st.Alias+"."+fc.Column, opFor(fc), v)
			}
		}

		if rng.Float64() < spec.AggFrac {
			addAgg(bb, steps)
		}
		batch.Add(bb.Query(fmt.Sprintf("W%03d-%s", qi, shape)))
	}
	return batch, nil
}

// MustGenerate is Generate but panics on an invalid spec; intended for
// benchmarks and static workload definitions.
func MustGenerate(spec Spec) *logical.Batch {
	b, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return b
}

func aliasOf(steps []step, alias string) step {
	for _, st := range steps {
		if st.Alias == alias {
			return st
		}
	}
	panic("workload: template references missing alias " + alias)
}

// opFor picks the comparison operator for a filter column.
func opFor(fc tpcd.FilterColumn) expr.CmpOp {
	if fc.Kind == tpcd.FilterEq {
		return expr.EQ
	}
	return expr.LT
}

// constant maps a fraction in [0,1) onto a filter column's value range:
// equality filters snap to an integer category, range filters stay in the
// central 80% of the range so the predicate is neither empty nor trivial.
func constant(fc tpcd.FilterColumn, frac float64) float64 {
	if fc.Kind == tpcd.FilterEq {
		return math.Floor(fc.Min + frac*(fc.Max-fc.Min+1))
	}
	return fc.Min + (0.1+0.8*frac)*(fc.Max-fc.Min)
}

// variantFrac spreads the per-query variant constants evenly (and therefore
// distinctly, for range filters) across the value range.
func variantFrac(qi, queries int) float64 {
	return float64(qi+1) / float64(queries+1)
}

// variantStep picks the step index carrying the i-th query's variant
// selection: the rotation runs over the steps whose table has a range
// filter column, so the variant constant is always drawn from a continuum.
// Every shape template starts with such a table, so the fallback to step 0
// is unreachable for the built-in shapes.
func variantStep(steps []step, qi int, filters map[string][]tpcd.FilterColumn) int {
	eligible := make([]int, 0, len(steps))
	for si, st := range steps {
		if hasRangeFilter(filters[st.Table]) {
			eligible = append(eligible, si)
		}
	}
	if len(eligible) == 0 {
		return 0
	}
	return eligible[qi%len(eligible)]
}

func hasRangeFilter(fcs []tpcd.FilterColumn) bool {
	for _, fc := range fcs {
		if fc.Kind == tpcd.FilterRange {
			return true
		}
	}
	return false
}

// rangeFilter returns the table's first range filter column (falling back
// to the first filter for tables without one; unreachable for variant
// scans, which variantStep restricts to range-filterable tables).
func rangeFilter(fcs []tpcd.FilterColumn) tpcd.FilterColumn {
	for _, fc := range fcs {
		if fc.Kind == tpcd.FilterRange {
			return fc
		}
	}
	return fcs[0]
}

// addAgg tops the block with the shape's canonical aggregation: group by a
// date-like column of the fact side and sum a revenue-like column. Using
// one fixed spec per table set makes aggregations unify across queries of
// the same template.
func addAgg(bb *logical.BlockBuilder, steps []step) {
	group, sum := "", ""
	for _, st := range steps {
		switch st.Table {
		case "orders":
			if group == "" {
				group = st.Alias + ".orderdate"
			}
		case "nation":
			group = st.Alias + ".name" // prefer a coarse group when present
		case "lineitem":
			sum = st.Alias + ".extendedprice"
		case "partsupp":
			if sum == "" {
				sum = st.Alias + ".supplycost"
			}
		}
	}
	if group == "" {
		for _, st := range steps {
			if st.Table == "lineitem" {
				group = st.Alias + ".shipdate"
				break
			}
		}
	}
	if group == "" || sum == "" {
		return // template without a sensible aggregation; leave the SPJ block
	}
	bb.GroupBy(group).Sum(sum)
}

// Fingerprint renders the batch canonically, byte for byte: equal strings
// mean structurally identical batches. Determinism tests compare the
// fingerprints of two generations from one Spec.
func Fingerprint(b *logical.Batch) string {
	var sb strings.Builder
	for _, q := range b.Queries {
		sb.WriteString(q.Name)
		sb.WriteByte('\n')
		writeBlock(&sb, q.Root, "  ")
	}
	return sb.String()
}

func writeBlock(sb *strings.Builder, b *logical.Block, indent string) {
	for _, src := range b.Sources {
		if src.Base() {
			fmt.Fprintf(sb, "%sscan %s %s\n", indent, src.Table, src.Alias)
		} else {
			fmt.Fprintf(sb, "%sderived %s\n", indent, src.Alias)
			writeBlock(sb, src.Sub, indent+"  ")
		}
	}
	for _, p := range b.Selects {
		fmt.Fprintf(sb, "%swhere %s\n", indent, p.Fingerprint())
	}
	for _, j := range b.Joins {
		fmt.Fprintf(sb, "%sjoin %s\n", indent, j)
	}
	if b.Agg != nil {
		fmt.Fprintf(sb, "%sagg %s\n", indent, b.Agg.Fingerprint())
	}
}
