package workload

import (
	"encoding/json"
	"testing"
)

// FuzzWorkloadSpec fuzzes the wire-format spec decoder: arbitrary bytes
// must either decode into a valid Spec or return an error — never panic —
// and everything that decodes must survive a marshal/decode round trip
// unchanged. Small accepted specs must also actually generate. The seed
// corpus under testdata/fuzz/FuzzWorkloadSpec pins the interesting
// boundaries (every shape name, knob extremes, strict-mode rejections).
func FuzzWorkloadSpec(f *testing.F) {
	seeds := []string{
		`{"queries": 4, "fan_out": 3, "shape": "star"}`,
		`{"seed": 42, "queries": 16, "shape": "mixed", "fan_out": 8, "sharing": 1, "select_frac": 0.5, "agg_frac": 0.25}`,
		`{"queries": 1, "fan_out": 2, "shape": "chain", "sharing": 0}`,
		`{"queries": 2, "fan_out": 7, "shape": "snowflake"}`,
		`{"queries": 2, "fan_out": 2, "shape": "donut"}`,             // unknown shape
		`{"queries": 2, "fan_out": 2, "turbo": true}`,                // unknown field
		`{"queries": 0, "fan_out": 2}`,                               // out of range
		`{"queries": 2, "fan_out": 9, "shape": "star"}`,              // fan-out beyond template
		`{"queries": 2, "fan_out": 2, "sharing": 1.5}`,               // knob out of [0,1]
		`{"queries": 2, "fan_out": 2, "sharing": "half"}`,            // type mismatch
		`{"queries": 2, "fan_out": 2} trailing`,                      // trailing data
		`{"seed": -9223372036854775808, "queries": 2, "fan_out": 2}`, // extreme seed
		`[]`,
		`null`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			return // rejected input; the front end maps this to a 4xx
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("DecodeSpec accepted an invalid spec %+v: %v", spec, err)
		}
		out, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshalling accepted spec %+v: %v", spec, err)
		}
		spec2, err := DecodeSpec(out)
		if err != nil {
			t.Fatalf("round trip of %s rejected: %v", out, err)
		}
		if spec2 != spec {
			t.Fatalf("round trip changed the spec: %+v -> %+v", spec, spec2)
		}
		// Small accepted specs must generate; bound the size so the fuzzer
		// cannot turn the generator into an OOM test.
		if spec.Queries <= 4 {
			if _, err := Generate(spec); err != nil {
				t.Fatalf("valid spec %+v failed to generate: %v", spec, err)
			}
		}
	})
}
