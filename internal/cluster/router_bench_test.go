package cluster

import (
	"net/http"
	"testing"

	"repro/internal/server"
)

// BenchmarkRouter measures routed end-to-end optimize throughput over 3
// live replicas, and reports bc_calls — oracle calls per routed request —
// which is deterministic (the same batch on the same session spends the
// same memoized-distinct call count every run) and so doubles as a
// regression gate in BENCH_baseline.json.
func BenchmarkRouter(b *testing.B) {
	c := newTestCluster(b, 3, server.Config{})
	body := specBody(b, nil)
	hdr := map[string]string{"X-Tenant": "bench"}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, data := post(b, c.front.URL, body, hdr)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("request %d = %d: %s", i, resp.StatusCode, data)
		}
		total += decodeOptimize(b, data).Telemetry.OracleCalls
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/float64(b.N), "bc_calls")
}
