package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministicAcrossInputOrder: the ring is a pure function of
// the member set — input order and duplicates must not change any key's
// preference order, or independent routers would disagree on placement.
func TestRingDeterministicAcrossInputOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 0)
	if !reflect.DeepEqual(a.Replicas(), b.Replicas()) {
		t.Fatalf("member lists differ: %v vs %v", a.Replicas(), b.Replicas())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant%d|sf=%d", i%17, i%3)
		oa, ob := a.Order(key), b.Order(key)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("Order(%q) differs across input orders: %v vs %v", key, oa, ob)
		}
	}
}

// TestRingOrderCoversAllReplicas: Order is a full preference order —
// every member exactly once, primary first.
func TestRingOrderCoversAllReplicas(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d", "http://e"}
	r := NewRing(members, 16)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		o := r.Order(key)
		if len(o) != len(members) {
			t.Fatalf("Order(%q) has %d entries, want %d: %v", key, len(o), len(members), o)
		}
		seen := make(map[string]bool)
		for _, rep := range o {
			if seen[rep] {
				t.Fatalf("Order(%q) repeats %s: %v", key, rep, o)
			}
			seen[rep] = true
		}
		if r.Owner(key) != o[0] {
			t.Fatalf("Owner(%q) = %s, Order starts with %s", key, r.Owner(key), o[0])
		}
	}
}

// TestRingDistribution: with 64 vnodes and 3 replicas no replica owns a
// wildly unfair share of a large key population.
func TestRingDistribution(t *testing.T) {
	r := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	counts := make(map[string]int)
	const n = 9000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("tenant-%d|sf=1", i))]++
	}
	for rep, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("%s owns %.1f%% of keys (counts %v), outside the sane band", rep, 100*frac, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d replicas own keys: %v", len(counts), counts)
	}
}

// TestRingMembershipMinimalMovement: removing one replica must re-home
// only the keys it owned; every other key keeps its owner. This is the
// property that makes membership change cheap for cache warmth.
func TestRingMembershipMinimalMovement(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c", "http://d"}, 0)
	reduced := NewRing([]string{"http://d", "http://b", "http://a"}, 0) // c removed, order shuffled
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "http://c" {
			if after == "http://c" {
				t.Fatalf("removed replica still owns %q", key)
			}
			// The key's new home must be its old first fallback.
			if want := full.Order(key)[1]; after != want {
				t.Errorf("key %q moved to %s, want its old fallback %s", key, after, want)
			}
			moved++
			continue
		}
		if before != after {
			t.Errorf("key %q moved %s → %s though its owner never left", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate sample: moved=%d kept=%d", moved, kept)
	}
}

// TestRingEdgeCases: empty and single-member rings behave.
func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if o := empty.Order("x"); o != nil {
		t.Errorf("empty ring Order = %v", o)
	}
	if empty.Owner("x") != "" {
		t.Errorf("empty ring Owner = %q", empty.Owner("x"))
	}
	one := NewRing([]string{"http://only"}, 0)
	for _, key := range []string{"a", "b", ""} {
		if got := one.Owner(key); got != "http://only" {
			t.Errorf("single ring Owner(%q) = %q", key, got)
		}
	}
}
