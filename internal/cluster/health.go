package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"
)

// replicaHealth is the router's view of one replica, refreshed by
// CheckNow (periodically, when the router runs its poll loop) and
// passively by forwarding outcomes (a dial error marks a replica down
// without waiting for the next poll; any successful response marks it
// back up).
type replicaHealth struct {
	// up is false after a failed health probe or a dial error; a down
	// replica drops out of rotation until a probe (or a successful
	// forward) brings it back.
	up bool
	// draining is true when /healthz answered with status "draining":
	// the replica finishes in-flight work but must get no new requests.
	draining bool
	// openCatalogs holds the catalog pool keys ("sf=1", "sf=10+hash")
	// whose circuit breaker the replica reports open. Keys routed to
	// those catalogs skip the replica — its server would only answer 503
	// breaker_open — while other catalogs keep using it.
	openCatalogs map[string]bool
	// lastErr is the last probe failure, for the aggregated /healthz.
	lastErr string
}

// eligible reports whether the replica may receive a request for the
// given catalog key.
func (h *replicaHealth) eligible(catalog string) bool {
	return h.up && !h.draining && !h.openCatalogs[catalog]
}

// healthzBody is the subset of a replica's /healthz the router reads.
type healthzBody struct {
	Status   string `json:"status"`
	Breakers map[string]struct {
		State string `json:"state"`
	} `json:"breakers"`
}

// healthTracker holds the health map under its own lock, separate from
// the router's load accounting, so a slow health sweep never blocks
// request routing.
type healthTracker struct {
	mu sync.Mutex
	m  map[string]*replicaHealth
}

func newHealthTracker(replicas []string) *healthTracker {
	t := &healthTracker{m: make(map[string]*replicaHealth, len(replicas))}
	for _, r := range replicas {
		// Optimistically healthy: a fresh router must not black-hole
		// traffic before its first poll completes; a wrong guess costs one
		// failed forward, which itself marks the replica down.
		t.m[r] = &replicaHealth{up: true}
	}
	return t
}

// snapshot returns a copy of one replica's state (zero value if unknown).
func (t *healthTracker) snapshot(replica string) replicaHealth {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.m[replica]; ok {
		cp := *h
		return cp
	}
	return replicaHealth{}
}

// eligible reports whether replica may serve catalog right now.
func (t *healthTracker) eligible(replica, catalog string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.m[replica]
	return ok && h.eligible(catalog)
}

// markDown records a passive failure (dial error on a forward).
func (t *healthTracker) markDown(replica string, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.m[replica]; ok {
		h.up = false
		h.lastErr = err.Error()
	}
}

// markUp records a passive success: any response proves the replica is
// reachable (draining/breaker state stays as last probed — a 503 response
// updates those through its code, not here).
func (t *healthTracker) markUp(replica string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.m[replica]; ok {
		h.up = true
		h.lastErr = ""
	}
}

// markDraining flips the draining bit without waiting for a probe (the
// router learns it from a 503 draining rejection).
func (t *healthTracker) markDraining(replica string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if h, ok := t.m[replica]; ok {
		h.draining = true
	}
}

// store replaces one replica's probed state.
func (t *healthTracker) store(replica string, h replicaHealth) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[replica] = &h
}

// CheckNow probes every replica's /healthz once, synchronously, and
// replaces the router's health view with the outcome: unreachable → down,
// status "draining" → draining, reported open breakers → per-catalog
// exclusions. The router calls it on its poll interval; tests call it
// directly to advance health state deterministically.
func (rt *Router) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.ring.Replicas() {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			rt.health.store(rep, rt.probe(ctx, rep))
		}(rep)
	}
	wg.Wait()
}

// probe fetches one replica's /healthz and folds it into a health record.
func (rt *Router) probe(ctx context.Context, replica string) replicaHealth {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/healthz", nil)
	if err != nil {
		return replicaHealth{lastErr: err.Error()}
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return replicaHealth{lastErr: err.Error()}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return replicaHealth{lastErr: err.Error()}
	}
	var body healthzBody
	_ = json.Unmarshal(data, &body) // a non-JSON healthz still proves liveness
	h := replicaHealth{up: true, draining: body.Status == "draining"}
	for cat, b := range body.Breakers {
		if b.State == "open" {
			if h.openCatalogs == nil {
				h.openCatalogs = make(map[string]bool)
			}
			h.openCatalogs[cat] = true
		}
	}
	return h
}

// pollLoop re-probes on the configured interval until ctx ends.
func (rt *Router) pollLoop(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckNow(ctx)
		}
	}
}
