package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// ReplicaHeader is the response header naming the replica that actually
// served a routed request — the observable the load generator's affinity
// accounting reads.
const ReplicaHeader = "X-MQO-Replica"

// Retryable rejection codes: a 503 carrying one of these states the
// request was rejected before any optimization work ran, so re-sending it
// to another replica cannot double-execute anything.
const (
	codeDraining     = "draining"
	codeBreakerOpen  = "breaker_open"
	codeQueueTimeout = "queue_timeout"
	codeNoReplicas   = "no_replicas"
	codeBadRequest   = "bad_request"
)

// RouterConfig parameterizes a Router. Replicas is required; everything
// else has serviceable defaults.
type RouterConfig struct {
	// Replicas lists the replica base URLs ("http://host:port", no
	// trailing slash required — one is trimmed).
	Replicas []string
	// VNodes is the virtual-node count per replica (default 64).
	VNodes int
	// LoadFactor is the bounded-load factor c ≥ 1: a replica's in-flight
	// share may exceed the fair share load/n by at most ×c before keys
	// spill to the next ring position (default 1.25). Higher values favor
	// affinity (warmer caches), lower values favor even load.
	LoadFactor float64
	// Retries caps how many *additional* replicas one request may be
	// forwarded to after its first target fails retryably (default 2).
	Retries int
	// DefaultSF mirrors the replicas' default scale factor so an
	// sf-less request routes to the same catalog key the serving tier
	// will pool it under (default 1).
	DefaultSF float64
	// MaxBodyBytes bounds a proxied request body (default 64 MiB — the
	// router fronts snapshot-sized payloads, not just optimize bodies).
	MaxBodyBytes int64
	// HealthInterval is the /healthz poll period (default 2s); Run starts
	// the loop. HealthTimeout bounds one probe (default 1s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// ForwardTimeout bounds one forwarded request (default none —
	// optimizations can legitimately run long; rely on client deadlines).
	ForwardTimeout time.Duration
	// Transport overrides the forwarding round-tripper (tests inject
	// httptest clients); nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// Logger receives routing diagnostics; nil discards them.
	Logger *log.Logger
}

func (c RouterConfig) normalize() RouterConfig {
	if c.VNodes <= 0 {
		c.VNodes = defaultVNodes
	}
	if c.LoadFactor < 1 {
		c.LoadFactor = 1.25
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.DefaultSF <= 0 {
		c.DefaultSF = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	return c
}

// Router is the replicated serving tier's front end: it places each
// request on the consistent-hash ring by (tenant, catalog), forwards it
// to the key's first eligible replica, and retries provably-unexecuted
// failures on the key's fallback replicas. Construct with NewRouter,
// mount Handler, optionally Run the health poll loop.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	health *healthTracker

	mu       sync.Mutex
	inflight map[string]int
	total    int

	forwards atomic64
	retries  atomic64
	failures atomic64
}

// atomic64 is a tiny counter (separate type to keep the struct readable).
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(n int64) {
	a.mu.Lock()
	a.v += n
	a.mu.Unlock()
}

func (a *atomic64) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}

// NewRouter builds a router over its config. The replica set is fixed for
// the router's lifetime; membership change means building a new router
// (rings are pure functions of the member set, so a rebuilt router agrees
// with every other instance built from the same list).
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.normalize()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: router needs at least one replica")
	}
	reps := make([]string, len(cfg.Replicas))
	for i, r := range cfg.Replicas {
		for len(r) > 0 && r[len(r)-1] == '/' {
			r = r[:len(r)-1]
		}
		if r == "" {
			return nil, errors.New("cluster: empty replica URL")
		}
		reps[i] = r
	}
	rt := &Router{
		cfg:      cfg,
		ring:     NewRing(reps, cfg.VNodes),
		client:   &http.Client{Transport: cfg.Transport, Timeout: cfg.ForwardTimeout},
		inflight: make(map[string]int),
	}
	rt.health = newHealthTracker(rt.ring.Replicas())
	return rt, nil
}

// Ring exposes the router's ring (tests assert placement against it).
func (rt *Router) Ring() *Ring { return rt.ring }

// Run blocks polling replica health until ctx is cancelled. Callers that
// drive health themselves (tests) skip it and call CheckNow.
func (rt *Router) Run(ctx context.Context) {
	rt.CheckNow(ctx)
	rt.pollLoop(ctx)
}

// Handler returns the router's routing table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/optimize", rt.handleOptimize)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// probeFields is the lenient body probe: the router reads only what
// placement needs — tenant and catalog key — and forwards the raw bytes
// untouched, so every other field (resume tokens included) reaches the
// replica exactly as the client sent it. Unknown fields and malformed
// bodies are NOT rejected here; the serving tier owns strict validation
// and its 400 must come from the replica that would have served the
// request.
type probeFields struct {
	Tenant      string  `json:"tenant"`
	SF          float64 `json:"sf"`
	ExtendedOps bool    `json:"extended_ops"`
}

// routingKey derives the placement key: tenant plus the catalog pool key
// in the serving tier's own spelling ("sf=1", "sf=10+hash"), so one
// tenant's traffic for one catalog always lands on one replica (until
// health or load says otherwise) and warms exactly one session.
func (rt *Router) routingKey(r *http.Request, body []byte) (key, catalog string) {
	var p probeFields
	_ = json.Unmarshal(body, &p) // lenient: zero values route like defaults
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = p.Tenant
	}
	if tenant == "" {
		tenant = "default"
	}
	sf := p.SF
	if sf <= 0 || math.IsNaN(sf) || math.IsInf(sf, 0) {
		sf = rt.cfg.DefaultSF
	}
	catalog = fmt.Sprintf("sf=%g", sf)
	if p.ExtendedOps {
		catalog += "+hash"
	}
	return tenant + "|" + catalog, catalog
}

// acquireSlot accounts one in-flight forward against the bounded-load
// capacity; the returned release must be called when the forward ends.
func (rt *Router) acquireSlot(replica string) func() {
	rt.mu.Lock()
	rt.inflight[replica]++
	rt.total++
	rt.mu.Unlock()
	return func() {
		rt.mu.Lock()
		rt.inflight[replica]--
		rt.total--
		rt.mu.Unlock()
	}
}

// underCapacity implements the bounded-load rule: with n eligible
// replicas and L requests in flight, a replica may hold at most
// ceil(c·(L+1)/n) of them. The +1 counts the request being placed.
func (rt *Router) underCapacity(replica string, eligible int) bool {
	if eligible <= 1 {
		return true
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	capacity := int(math.Ceil(rt.cfg.LoadFactor * float64(rt.total+1) / float64(eligible)))
	return rt.inflight[replica] < capacity
}

// errorBody mirrors the serving tier's error envelope (the subset the
// router reads and writes).
type errorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body)
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Printf(format, args...)
	}
}

// retryableReject classifies a replica response: true only for 503s whose
// code proves the request was rejected before any work ran (draining,
// open breaker, queue timeout) — or that carry Retry-After with an
// unknown code, which the serving tier only does on pre-execution
// rejections. 4xx are never retryable: a quota or tenancy rejection on
// one replica must surface to the client, not shop for a laxer replica.
func retryableReject(status int, body []byte) (string, bool) {
	if status != http.StatusServiceUnavailable {
		return "", false
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		return "", false
	}
	switch eb.Code {
	case codeDraining, codeBreakerOpen, codeQueueTimeout:
		return eb.Code, true
	}
	return eb.Code, eb.RetryAfterMS > 0
}

func (rt *Router) handleOptimize(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "request body too large", Code: "body_too_large"})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading request body: " + err.Error(), Code: codeBadRequest})
		return
	}
	key, catalog := rt.routingKey(r, body)
	prefs := rt.ring.Order(key)

	// Candidate order: the key's ring preference order, eligible replicas
	// first (healthy, not draining, breaker closed for this catalog, under
	// the bounded-load capacity), then eligible-but-saturated ones, then —
	// only if nothing was eligible — the rest, optimistically, because the
	// health view may be stale and a failed forward re-probes reality.
	eligible := make([]string, 0, len(prefs))
	saturated := make([]string, 0, len(prefs))
	rest := make([]string, 0, len(prefs))
	for _, rep := range prefs {
		switch {
		case !rt.health.eligible(rep, catalog):
			rest = append(rest, rep)
		case rt.underCapacity(rep, len(prefs)):
			eligible = append(eligible, rep)
		default:
			saturated = append(saturated, rep)
		}
	}
	candidates := append(append(eligible, saturated...), rest...)

	budget := rt.cfg.Retries + 1 // first attempt + retries
	var lastErr string
	for i, rep := range candidates {
		if i >= budget {
			break
		}
		if i > 0 {
			rt.retries.add(1)
		}
		status, hdr, respBody, err := rt.forward(r.Context(), rep, r, body)
		if err != nil {
			// The connection never yielded a response: for dial-class
			// errors the request provably never executed, so the next
			// replica may take it. Mark the replica down either way.
			rt.health.markDown(rep, err)
			lastErr = err.Error()
			rt.logf("cluster: %s: forward to %s failed: %v", key, rep, err)
			if r.Context().Err() != nil {
				return // the client is gone; stop shopping
			}
			continue
		}
		if code, retryable := retryableReject(status, respBody); retryable {
			if code == codeDraining {
				rt.health.markDraining(rep)
			}
			lastErr = string(respBody)
			rt.logf("cluster: %s: %s rejected with %s, trying next replica", key, rep, code)
			continue
		}
		rt.forwards.add(1)
		rt.health.markUp(rep)
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.Header().Set(ReplicaHeader, rep)
		w.WriteHeader(status)
		_, _ = w.Write(respBody)
		return
	}
	rt.failures.add(1)
	msg := "no replica could serve the request"
	if lastErr != "" {
		msg += "; last failure: " + lastErr
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: msg, Code: codeNoReplicas, RetryAfterMS: 1000})
}

// forward sends one attempt to one replica, returning the response
// verbatim (status, headers, body) or a transport error.
func (rt *Router) forward(ctx context.Context, replica string, orig *http.Request, body []byte) (int, http.Header, []byte, error) {
	release := rt.acquireSlot(replica)
	defer release()
	req, err := http.NewRequestWithContext(ctx, orig.Method, replica+orig.URL.Path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	for k, vs := range orig.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	req.Header.Set("Content-Length", strconv.Itoa(len(body)))
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	hdr := resp.Header.Clone()
	hdr.Del("Content-Length") // the writer recomputes it
	return resp.StatusCode, hdr, respBody, nil
}

// RouterStats is the body of the router's GET /v1/stats: cluster-wide
// counters plus each replica's own stats document, verbatim.
type RouterStats struct {
	Replicas int `json:"replicas"`
	Healthy  int `json:"healthy"`
	// Forwarded counts requests served through the router; Retried counts
	// extra replica attempts; Failed counts requests no replica served.
	Forwarded int64 `json:"forwarded"`
	Retried   int64 `json:"retried"`
	Failed    int64 `json:"failed"`
	// PerReplica maps replica URL to its live /v1/stats body (or an
	// error envelope when unreachable).
	PerReplica map[string]json.RawMessage `json:"per_replica"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	reps := rt.ring.Replicas()
	out := RouterStats{
		Replicas:   len(reps),
		Forwarded:  rt.forwards.load(),
		Retried:    rt.retries.load(),
		Failed:     rt.failures.load(),
		PerReplica: make(map[string]json.RawMessage, len(reps)),
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, rep := range reps {
		wg.Add(1)
		go func(rep string) {
			defer wg.Done()
			raw := rt.fetchJSON(r.Context(), rep+"/v1/stats")
			mu.Lock()
			out.PerReplica[rep] = raw
			mu.Unlock()
		}(rep)
	}
	wg.Wait()
	for _, rep := range reps {
		if rt.health.snapshot(rep).up {
			out.Healthy++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// fetchJSON GETs a replica endpoint and returns its body as raw JSON, or
// an error envelope.
func (rt *Router) fetchJSON(ctx context.Context, url string) json.RawMessage {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err == nil {
		var resp *http.Response
		if resp, err = rt.client.Do(req); err == nil {
			defer resp.Body.Close()
			var data []byte
			if data, err = io.ReadAll(io.LimitReader(resp.Body, 8<<20)); err == nil && json.Valid(data) {
				return data
			}
			if err == nil {
				err = errors.New("invalid JSON from replica")
			}
		}
	}
	msg, _ := json.Marshal(errorBody{Error: err.Error(), Code: "unreachable"})
	return msg
}

// routerHealthz is the body of the router's GET /healthz.
type routerHealthz struct {
	// Status is "ok" when every replica is serving, "degraded" when at
	// least one is not, "down" when none are.
	Status   string                  `json:"status"`
	Replicas map[string]replicaState `json:"replicas"`
}

type replicaState struct {
	Up       bool   `json:"up"`
	Draining bool   `json:"draining,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.CheckNow(r.Context())
	reps := rt.ring.Replicas()
	out := routerHealthz{Replicas: make(map[string]replicaState, len(reps))}
	serving := 0
	for _, rep := range reps {
		h := rt.health.snapshot(rep)
		out.Replicas[rep] = replicaState{Up: h.up, Draining: h.draining, Error: h.lastErr}
		if h.up && !h.draining {
			serving++
		}
	}
	status := http.StatusOK
	switch {
	case serving == len(reps):
		out.Status = "ok"
	case serving > 0:
		out.Status = "degraded"
	default:
		out.Status = "down"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}
