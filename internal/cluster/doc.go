// Package cluster is the replicated serving tier's routing layer: a
// bounded-load consistent-hash router that spreads (tenant, catalog) keys
// over a fixed set of mqoserver replicas while keeping each key's traffic
// pinned to one replica, so that replica's session pool and SharedCache
// stay warm for it.
//
// # Placement
//
// Ring hashes each replica onto 64 virtual nodes (FNV-1a) and each
// request key — tenant + "|" + catalog pool key, e.g. "acme|sf=10+hash" —
// onto the same circle. Order(key) is the clockwise walk from the key's
// hash, deduplicated: a full, deterministic preference order. The ring is
// a pure function of the member *set* (input order and duplicates are
// irrelevant), so independent router instances agree on placement without
// coordination, and adding or removing a replica moves only the keys on
// the arcs that replica owned.
//
// # Affinity vs load
//
// Router forwards each request to the first replica in its key's
// preference order that is (a) eligible — up, not draining, circuit
// breaker for the request's catalog not open — and (b) under the
// bounded-load capacity ceil(c·(L+1)/n) for load factor c (default 1.25),
// n eligible replicas and L requests in flight. Saturated-but-eligible
// replicas are used before ineligible ones; if nothing is eligible the
// router tries the remaining replicas optimistically, since its health
// view may be stale. With healthy replicas and moderate load this yields
// ≥90% affinity per key while capping how hot any one replica can run.
//
// # Retries
//
// A request is re-sent to the next replica in its preference order only
// when the failure proves it never executed: a transport-level error
// (connect refused, reset before response), or a 503 whose code is
// draining, breaker_open or queue_timeout — rejections the serving tier
// issues before any optimization work. Everything else, 4xx rejections in
// particular, relays to the client verbatim: quota and tenancy decisions
// belong to the replica, and shopping them around would let a client
// launder a 429 into a fresh budget. The retry budget (default 2 extra
// replicas) bounds worst-case fan-out. Relayed responses carry the
// serving replica in the X-MQO-Replica header.
//
// # Health
//
// Replica health combines an active /healthz poll (status, per-catalog
// breaker states) with passive signals from forwarding: a dial error
// marks a replica down immediately, any response marks it reachable, a
// 503 draining marks it draining. Down and draining replicas drop out of
// rotation and their keys spill to the next ring position; when a replica
// recovers, the same keys return to it — deterministically, because the
// preference order never changed.
package cluster
