package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

// testCluster stands up n real serving replicas plus a router in front of
// them, all on httptest listeners.
type testCluster struct {
	urls    []string
	servers []*httptest.Server
	srvs    []*server.Server
	rt      *Router
	front   *httptest.Server
}

func newTestCluster(tb testing.TB, n int, cfg server.Config) *testCluster {
	tb.Helper()
	c := &testCluster{}
	for i := 0; i < n; i++ {
		srv := server.New(cfg)
		ts := httptest.NewServer(srv.Handler())
		tb.Cleanup(ts.Close)
		c.srvs = append(c.srvs, srv)
		c.servers = append(c.servers, ts)
		c.urls = append(c.urls, ts.URL)
	}
	rt, err := NewRouter(RouterConfig{Replicas: c.urls})
	if err != nil {
		tb.Fatal(err)
	}
	c.rt = rt
	c.front = httptest.NewServer(rt.Handler())
	tb.Cleanup(c.front.Close)
	return c
}

// replicaAt maps a replica URL back to its index in the cluster.
func (c *testCluster) replicaAt(url string) int {
	for i, u := range c.urls {
		if u == url {
			return i
		}
	}
	return -1
}

func clusterSpec() workload.Spec {
	return workload.Spec{
		Seed:       7,
		Queries:    8,
		Shape:      workload.Mixed,
		FanOut:     4,
		Sharing:    0.5,
		SelectFrac: 0.8,
		AggFrac:    0.5,
	}
}

func specBody(tb testing.TB, extra map[string]any) string {
	tb.Helper()
	m := map[string]any{"spec": clusterSpec()}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		tb.Fatal(err)
	}
	return string(b)
}

func post(tb testing.TB, url, body string, hdr map[string]string) (*http.Response, []byte) {
	tb.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/optimize", strings.NewReader(body))
	if err != nil {
		tb.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp, data
}

func decodeOptimize(tb testing.TB, data []byte) *server.OptimizeResponse {
	tb.Helper()
	var out server.OptimizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		tb.Fatalf("decoding response: %v\n%s", err, data)
	}
	return &out
}

// TestRouterParityOptimize: a request served through the router returns
// exactly what the same request served directly by its home replica
// returns — same deterministic counters, same plan — and the response
// names that replica in X-MQO-Replica.
func TestRouterParityOptimize(t *testing.T) {
	c := newTestCluster(t, 3, server.Config{})
	body := specBody(t, nil)
	hdr := map[string]string{"X-Tenant": "acme"}
	owner := c.rt.Ring().Owner("acme|sf=1")

	resp, refData := post(t, owner, body, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct run = %d: %s", resp.StatusCode, refData)
	}
	ref := decodeOptimize(t, refData)

	resp, gotData := post(t, c.front.URL, body, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed run = %d: %s", resp.StatusCode, gotData)
	}
	if rep := resp.Header.Get(ReplicaHeader); rep != owner {
		t.Errorf("served by %s, ring owner is %s", rep, owner)
	}
	got := decodeOptimize(t, gotData)
	if got.CostMS != ref.CostMS || got.BenefitMS != ref.BenefitMS {
		t.Errorf("routed costs (%v, %v) != direct (%v, %v)", got.CostMS, got.BenefitMS, ref.CostMS, ref.BenefitMS)
	}
	if len(got.Materialized) != len(ref.Materialized) {
		t.Fatalf("routed set %v != %v", got.Materialized, ref.Materialized)
	}
	for i := range got.Materialized {
		if got.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("routed set %v != %v", got.Materialized, ref.Materialized)
		}
	}
	if got.Telemetry.OracleCalls != ref.Telemetry.OracleCalls {
		t.Errorf("routed oracle calls %d != direct %d", got.Telemetry.OracleCalls, ref.Telemetry.OracleCalls)
	}

	// A malformed body is the replica's 400 to give, relayed verbatim —
	// the router's lenient probe must not pre-empt strict validation.
	resp, data := post(t, c.front.URL, `{"spec": {"seed": 7}, "bogus": 1}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body via router = %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get(ReplicaHeader) == "" {
		t.Error("400 relay carries no replica header — was it answered locally?")
	}
}

// TestRouterRejectParity: 403 (strict tenants) and 429 (quota) are
// relayed verbatim and never retried on another replica — a rejected
// tenant must not be able to launder its rejection through failover.
func TestRouterRejectParity(t *testing.T) {
	strict := newTestCluster(t, 2, server.Config{
		Tenants:       map[string]server.TenantConfig{"known": {}},
		StrictTenants: true,
	})
	resp, data := post(t, strict.front.URL, specBody(t, nil), map[string]string{"X-Tenant": "stranger"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("stranger via router = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != "unknown_tenant" {
		t.Errorf("403 body = %s, want code unknown_tenant", data)
	}
	if n := strict.rt.retries.load(); n != 0 {
		t.Errorf("router retried a 403 %d times", n)
	}
	if resp, data = post(t, strict.front.URL, specBody(t, nil), map[string]string{"X-Tenant": "known"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("known tenant via router = %d: %s", resp.StatusCode, data)
	}

	metered := newTestCluster(t, 3, server.Config{
		DefaultTenant: server.TenantConfig{CallQuota: 1},
	})
	body := specBody(t, nil)
	hdr := map[string]string{"X-Tenant": "meter"}
	resp, data = post(t, metered.front.URL, body, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first metered request = %d: %s", resp.StatusCode, data)
	}
	first := resp.Header.Get(ReplicaHeader)
	resp, data = post(t, metered.front.URL, body, hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-quota via router = %d: %s — a retry would launder the quota", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != "quota_exhausted" {
		t.Errorf("429 body = %s, want code quota_exhausted", data)
	}
	if rep := resp.Header.Get(ReplicaHeader); rep != first {
		t.Errorf("429 came from %s, quota was spent on %s — affinity broke", rep, first)
	}
	if n := metered.rt.retries.load(); n != 0 {
		t.Errorf("router retried a 429 %d times", n)
	}
}

// TestRouterResumeParity: a call-budget-stopped run through the router
// yields a checkpoint whose resume — also through the router — completes
// to the uninterrupted result, bit-identically.
func TestRouterResumeParity(t *testing.T) {
	c := newTestCluster(t, 3, server.Config{})
	hdr := map[string]string{"X-Tenant": "resumer"}

	resp, data := post(t, c.front.URL, specBody(t, nil), hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference = %d: %s", resp.StatusCode, data)
	}
	ref := decodeOptimize(t, data)

	resp, data = post(t, c.front.URL, specBody(t, map[string]any{"oracle_call_budget": ref.Telemetry.OracleCalls / 2}), hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted = %d: %s", resp.StatusCode, data)
	}
	stopped := decodeOptimize(t, data)
	if stopped.Telemetry.Stopped.String() != "call-budget" || stopped.Checkpoint == nil {
		t.Fatalf("budgeted run stopped=%v checkpoint=%v, want a resumable call-budget stop",
			stopped.Telemetry.Stopped, stopped.Checkpoint != nil)
	}

	resp, data = post(t, c.front.URL, specBody(t, map[string]any{"resume": stopped.Checkpoint}), hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume via router = %d: %s", resp.StatusCode, data)
	}
	got := decodeOptimize(t, data)
	if got.CostMS != ref.CostMS || len(got.Materialized) != len(ref.Materialized) {
		t.Fatalf("resumed (%v, %v) != reference (%v, %v)", got.CostMS, got.Materialized, ref.CostMS, ref.Materialized)
	}
	for i := range got.Materialized {
		if got.Materialized[i] != ref.Materialized[i] {
			t.Fatalf("resumed set %v != %v", got.Materialized, ref.Materialized)
		}
	}
	if got.Checkpoint != nil {
		t.Error("unbudgeted resume still carries a checkpoint")
	}
}

// TestRouterAffinity: with healthy replicas every tenant-catalog key
// sticks to its ring owner — the property that keeps per-key caches warm.
// The acceptance bar is ≥90%; a healthy sequential trace achieves 100%.
func TestRouterAffinity(t *testing.T) {
	c := newTestCluster(t, 3, server.Config{})
	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	served := make(map[string]map[string]int) // tenant → replica → count
	for round := 0; round < 4; round++ {
		for _, tn := range tenants {
			resp, data := post(t, c.front.URL, specBody(t, nil), map[string]string{"X-Tenant": tn})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("tenant %s round %d = %d: %s", tn, round, resp.StatusCode, data)
			}
			rep := resp.Header.Get(ReplicaHeader)
			if served[tn] == nil {
				served[tn] = make(map[string]int)
			}
			served[tn][rep]++
		}
	}
	homes := make(map[string]bool)
	for _, tn := range tenants {
		owner := c.rt.Ring().Owner(tn + "|sf=1")
		total, home := 0, 0
		for rep, n := range served[tn] {
			total += n
			if rep == owner {
				home += n
			}
		}
		if float64(home) < 0.9*float64(total) {
			t.Errorf("tenant %s: %d/%d requests on home replica %s (%v)", tn, home, total, owner, served[tn])
		}
		homes[owner] = true
	}
	if len(homes) < 2 {
		t.Logf("note: all %d tenants hashed to one replica — affinity still holds", len(tenants))
	}
}

// TestRouterFailover: killing a replica mid-trace loses zero requests —
// its keys spill to their deterministic fallback — and draining the
// fallback spills them once more, still without a failed request.
func TestRouterFailover(t *testing.T) {
	c := newTestCluster(t, 3, server.Config{})
	hdr := map[string]string{"X-Tenant": "churn"}
	body := specBody(t, nil)
	order := c.rt.Ring().Order("churn|sf=1")

	for i := 0; i < 5; i++ {
		resp, data := post(t, c.front.URL, body, hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-kill request %d = %d: %s", i, resp.StatusCode, data)
		}
		if rep := resp.Header.Get(ReplicaHeader); rep != order[0] {
			t.Fatalf("pre-kill request %d served by %s, want home %s", i, rep, order[0])
		}
	}

	// Kill the home replica: the listener closes, forwards get connection
	// errors, and the router must absorb them without failing a request.
	c.servers[c.replicaAt(order[0])].Close()
	for i := 0; i < 5; i++ {
		resp, data := post(t, c.front.URL, body, hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill request %d = %d: %s", i, resp.StatusCode, data)
		}
		if rep := resp.Header.Get(ReplicaHeader); rep != order[1] {
			t.Fatalf("post-kill request %d served by %s, want fallback %s", i, rep, order[1])
		}
	}
	if c.rt.health.snapshot(order[0]).up {
		t.Error("killed replica still marked up after failed forwards")
	}

	// Drain the fallback: its 503 draining rejections are provably
	// unexecuted, so requests hop once more to the last replica.
	c.srvs[c.replicaAt(order[1])].Drain()
	for i := 0; i < 5; i++ {
		resp, data := post(t, c.front.URL, body, hdr)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain request %d = %d: %s", i, resp.StatusCode, data)
		}
		if rep := resp.Header.Get(ReplicaHeader); rep != order[2] {
			t.Fatalf("post-drain request %d served by %s, want %s", i, rep, order[2])
		}
	}
	if !c.rt.health.snapshot(order[1]).draining {
		t.Error("drained replica not marked draining after its rejection")
	}

	// Everything gone → an orderly 503, not a hang or a panic.
	c.servers[c.replicaAt(order[1])].Close()
	c.servers[c.replicaAt(order[2])].Close()
	resp, data := post(t, c.front.URL, body, hdr)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-replica request = %d: %s", resp.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Code != codeNoReplicas {
		t.Errorf("no-replica body = %s, want code %s", data, codeNoReplicas)
	}
}

// TestRouterStatsAndHealthz: the aggregated stats carry every replica's
// own stats document plus router counters, and /healthz degrades and
// fails as replicas disappear.
func TestRouterStatsAndHealthz(t *testing.T) {
	c := newTestCluster(t, 3, server.Config{})
	if resp, data := post(t, c.front.URL, specBody(t, nil), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup = %d: %s", resp.StatusCode, data)
	}

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(c.front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	resp, data := get("/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d: %s", resp.StatusCode, data)
	}
	var stats RouterStats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replicas != 3 || stats.Healthy != 3 || stats.Forwarded < 1 {
		t.Errorf("stats = %+v, want 3 replicas, 3 healthy, ≥1 forwarded", stats)
	}
	if len(stats.PerReplica) != 3 {
		t.Fatalf("per-replica stats for %d replicas, want 3", len(stats.PerReplica))
	}
	for rep, raw := range stats.PerReplica {
		if !strings.Contains(string(raw), "tenants") {
			t.Errorf("replica %s stats look wrong: %s", rep, raw)
		}
	}

	resp, data = get("/healthz")
	var hz routerHealthz
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok: %s", resp.StatusCode, hz.Status, data)
	}

	c.servers[0].Close()
	resp, data = get("/healthz")
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "degraded" {
		t.Fatalf("healthz after one kill = %d %q: %s", resp.StatusCode, hz.Status, data)
	}

	c.servers[1].Close()
	c.servers[2].Close()
	resp, data = get("/healthz")
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "down" {
		t.Fatalf("healthz after all kills = %d %q: %s", resp.StatusCode, hz.Status, data)
	}
}
