package cluster

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node count per replica. 64 points per
// replica keep the largest arc a single replica owns within a few percent
// of fair for small clusters, which is what bounds how much load shifts
// when one replica joins or leaves.
const defaultVNodes = 64

// fnv1a64 hashes a string (FNV-1a, 64-bit) — the ring's only hash. It is
// stable across processes and platforms, so every router instance built
// over the same member list computes the identical ring.
func fnv1a64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// replica.
type ringPoint struct {
	hash    uint64
	replica int // index into Ring.replicas
}

// Ring is a consistent-hash ring over a fixed replica list. It is
// immutable after construction — membership change means building a new
// Ring, which is cheap (O(replicas·vnodes·log)) and keeps every lookup
// lock-free. Determinism is contractual: two rings built from the same
// member set (in any input order) produce identical preference orders for
// every key, so independent routers agree on placement without talking to
// each other, and a membership change re-routes only the keys whose arcs
// the joining/leaving replica owned.
type Ring struct {
	replicas []string
	vnodes   int
	points   []ringPoint
}

// NewRing builds a ring over the replica names (base URLs, for the
// router). Duplicates are dropped; the input order is irrelevant (members
// are sorted first, so the ring is a pure function of the member set).
// vnodes ≤ 0 selects the default (64).
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	uniq := make([]string, 0, len(replicas))
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	sort.Strings(uniq)
	ring := &Ring{replicas: uniq, vnodes: vnodes}
	ring.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, r := range uniq {
		for v := 0; v < vnodes; v++ {
			ring.points = append(ring.points, ringPoint{
				hash:    fnv1a64(fmt.Sprintf("%s#%d", r, v)),
				replica: i,
			})
		}
	}
	sort.Slice(ring.points, func(a, b int) bool {
		pa, pb := ring.points[a], ring.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return pa.replica < pb.replica // total order even on hash collisions
	})
	return ring
}

// Replicas returns the member list (sorted, deduplicated).
func (r *Ring) Replicas() []string { return r.replicas }

// Owner returns the primary replica for a key — the first entry of
// Order(key) — or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	o := r.Order(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// Order returns every replica in the key's preference order: the
// clockwise walk of the ring starting at hash(key), keeping each
// replica's first appearance. The first entry is the key's home; a router
// that finds it unhealthy or saturated spills to the next, so failover
// targets are as deterministic as primary placement. The returned slice
// is freshly allocated.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := fnv1a64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.replicas))
	seen := make(map[int]bool, len(r.replicas))
	for i := 0; i < len(r.points) && len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}
