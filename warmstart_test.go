package repro

import (
	"context"
	"testing"

	"repro/internal/physical"
	"repro/internal/tpcd"
)

// TestWarmOracleOffByDefault pins the replay-determinism contract: without
// an explicit warm-start, repeating an identical batch on one session
// costs the same oracle calls every time — the shared cache speeds the
// evaluations up but never changes call accounting.
func TestWarmOracleOffByDefault(t *testing.T) {
	sess := newTestSession(t)
	first, err := sess.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	second, err := sess.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	if second.Telemetry.OracleCalls != first.Telemetry.OracleCalls {
		t.Errorf("replay oracle calls = %d, want %d (cold accounting)",
			second.Telemetry.OracleCalls, first.Telemetry.OracleCalls)
	}
	if second.Telemetry.SharedOracleHits != 0 {
		t.Errorf("replay SharedOracleHits = %d, want 0 without warm-start", second.Telemetry.SharedOracleHits)
	}
}

// TestWithWarmOracleRepeatSkipsAllCalls: with warm-oracle reads enabled,
// a repeated identical batch is served entirely from the memoized values
// the first run published — zero oracle calls, every one of them a
// SharedOracleHit, bit-identical result.
func TestWithWarmOracleRepeatSkipsAllCalls(t *testing.T) {
	sess := newTestSession(t, WithWarmOracle(true))
	first, err := sess.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	if first.Telemetry.OracleCalls == 0 {
		t.Fatal("first run spent no oracle calls; test needs a real search")
	}
	second, err := sess.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, first, second)
	if second.Telemetry.OracleCalls != 0 {
		t.Errorf("warm repeat spent %d oracle calls, want 0", second.Telemetry.OracleCalls)
	}
	if got, want := second.Telemetry.SharedOracleHits, first.Telemetry.OracleCalls; got != want {
		t.Errorf("warm repeat SharedOracleHits = %d, want %d (the cold cost)", got, want)
	}
}

// TestWarmStartFromSnapshot is the warm-join gate end to end: a cold
// session's exported snapshot, round-tripped through its byte encoding and
// imported into a fresh session, makes that session produce bit-identical
// results while skipping every oracle call the donor already paid for —
// far beyond the required 2× reduction.
func TestWarmStartFromSnapshot(t *testing.T) {
	donor := newTestSession(t)
	ref, err := donor.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	coldCalls := ref.Telemetry.OracleCalls
	if coldCalls == 0 {
		t.Fatal("donor run spent no oracle calls; test needs a real search")
	}

	enc, err := donor.ExportCache("sf=1").Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := physical.DecodeCacheSnapshot(enc)
	if err != nil {
		t.Fatalf("decoding own export: %v", err)
	}

	warm := newTestSession(t)
	n, err := warm.ImportCache(snap, "sf=1")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || warm.CacheEntries() != n {
		t.Fatalf("imported %d entries, cache holds %d", n, warm.CacheEntries())
	}

	got, err := warm.Optimize(context.Background(), tpcd.BQ(3))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, ref, got)
	if got.Telemetry.OracleCalls*2 > coldCalls {
		t.Errorf("warm-started run spent %d oracle calls, want ≤ half of cold %d", got.Telemetry.OracleCalls, coldCalls)
	}
	if got.Telemetry.OracleCalls != 0 || got.Telemetry.SharedOracleHits != coldCalls {
		t.Errorf("warm run = %d calls + %d shared hits, want 0 + %d (greedy replays the donor's exact set sequence)",
			got.Telemetry.OracleCalls, got.Telemetry.SharedOracleHits, coldCalls)
	}

	// A scope-mismatched import is rejected before merging anything.
	other := newTestSession(t)
	if _, err := other.ImportCache(snap, "sf=2"); err == nil {
		t.Fatal("scope mismatch import succeeded")
	}
	if other.CacheEntries() != 0 {
		t.Fatal("rejected import left entries behind")
	}
}

// assertSameResult compares the decision-relevant outputs of two runs:
// chosen set, cost, volcano cost and benefit must be bit-identical.
func assertSameResult(t *testing.T, a, b *RunResult) {
	t.Helper()
	if a.Cost != b.Cost || a.VolcanoCost != b.VolcanoCost || a.Benefit != b.Benefit {
		t.Errorf("costs (%v, %v, %v) != (%v, %v, %v)",
			b.Cost, b.VolcanoCost, b.Benefit, a.Cost, a.VolcanoCost, a.Benefit)
	}
	if len(a.Materialized) != len(b.Materialized) {
		t.Fatalf("materialized %v != %v", b.Materialized, a.Materialized)
	}
	for i := range a.Materialized {
		if a.Materialized[i] != b.Materialized[i] {
			t.Fatalf("materialized %v != %v", b.Materialized, a.Materialized)
		}
	}
}
