// Submodular: the paper's underlying abstract problem — unconstrained,
// normalized submodular maximization with possibly negative values — used
// directly, outside any database context. The example builds Profitted Max
// Coverage instances (the family from the Theorem 2 hardness proof) with a
// planted optimum f(Θ)=1 and shows that MarginalGreedy with the
// Proposition 1 decomposition always clears the Theorem 1 bound
// [1 − (c(Θ)/f(Θ))·ln(1 + f(Θ)/c(Θ))]·f(Θ).
package main

import (
	"fmt"

	"repro/internal/submod"
)

func main() {
	fmt.Println("Profitted Max Coverage, planted optimum f(Θ)=1, γ = f(Θ)/c(Θ):")
	fmt.Printf("%6s  %12s  %12s  %12s  %8s\n", "γ", "MarginalG.", "bound", "optimum", "ok")
	for _, gamma := range []float64{0.25, 0.5, 1, 2, 4, 8, 16} {
		p := submod.PlantedInstance(2024, 80, 4, 10, 24, gamma)
		oracle := submod.NewOracle(p)

		// The problem's own decomposition: every set costs 1/(γ·l).
		d := submod.NewDecomposition(oracle, p.ExplicitCosts())
		mg := submod.MarginalGreedy(d)

		opt := submod.Exhaustive(oracle)
		bound := submod.TheoremOneBound(opt.Value, opt.Value/gamma)
		fmt.Printf("%6.2f  %12.4f  %12.4f  %12.4f  %8v\n",
			gamma, mg.Value, bound, opt.Value, mg.Value >= bound-1e-9)
	}

	fmt.Println("\nLazy vs eager MarginalGreedy (identical answers, fewer evaluations):")
	p := submod.PlantedInstance(7, 120, 6, 20, 30, 4)
	o1 := submod.NewOracle(p)
	eager := submod.MarginalGreedy(submod.DecomposeStar(o1))
	o2 := submod.NewOracle(p)
	lazy := submod.LazyMarginalGreedy(submod.DecomposeStar(o2))
	fmt.Printf("  eager: f=%.4f with %d sets, %d oracle calls\n", eager.Value, eager.Set.Len(), o1.Calls)
	fmt.Printf("  lazy:  f=%.4f with %d sets, %d oracle calls\n", lazy.Value, lazy.Set.Len(), o2.Calls)
	fmt.Printf("  same answer: %v\n", eager.Set.Equal(lazy.Set))
}
