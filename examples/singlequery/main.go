// Single query: MQO applied to one complex query with common
// subexpressions inside it — the paper's Experiment 2 scenario. Q15's
// revenue view (an aggregation over a shipdate slice of lineitem) is
// referenced twice, and Q2's nested minimum-cost subquery shares a
// four-way join with its outer block; a conventional optimizer cannot
// exploit either, while the MQO strategies materialize the shared slice.
// One Session serves every query — the streaming shape of a production
// optimizer service.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/tpcd"
)

func main() {
	sess, err := repro.NewSession(tpcd.Catalog(1), cost.Default())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []*logical.Query{tpcd.Q15(), tpcd.Q11(), tpcd.Q2()} {
		batch := &logical.Batch{}
		batch.Add(q)
		fmt.Printf("== %s ==\n", q.Name)
		for _, s := range []repro.Strategy{repro.Volcano, repro.MarginalGreedy} {
			r, err := sess.Optimize(ctx, batch, repro.WithStrategy(s))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-15s cost %7.0f s   materialized %d\n", s, r.Cost/1000, len(r.Materialized))
			if s == repro.MarginalGreedy && len(r.Plan.Steps) > 0 {
				fmt.Printf("  shared nodes computed once:\n")
				for _, st := range r.Plan.Steps {
					fmt.Printf("    group %d, ~%.0f rows (write %.0f ms)\n",
						st.Group, st.Plan.Rows, st.WriteCost)
				}
			}
		}
		fmt.Println()
	}
}
