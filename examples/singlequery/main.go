// Single query: MQO applied to one complex query with common
// subexpressions inside it — the paper's Experiment 2 scenario. Q15's
// revenue view (an aggregation over a shipdate slice of lineitem) is
// referenced twice, and Q2's nested minimum-cost subquery shares a
// four-way join with its outer block; a conventional optimizer cannot
// exploit either, while the MQO strategies materialize the shared slice.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

func main() {
	cat := tpcd.Catalog(1)
	for _, q := range []*logical.Query{tpcd.Q15(), tpcd.Q11(), tpcd.Q2()} {
		batch := &logical.Batch{}
		batch.Add(q)
		fmt.Printf("== %s ==\n", q.Name)
		for _, s := range []core.Strategy{core.Volcano, core.MarginalGreedy} {
			opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
			if err != nil {
				log.Fatal(err)
			}
			r := core.Run(opt, s)
			fmt.Printf("  %-15s cost %7.0f s   materialized %d\n", s, r.Cost/1000, len(r.Materialized))
			if s == core.MarginalGreedy && len(r.Materialized) > 0 {
				plan := opt.Plan(r.MatSet())
				fmt.Printf("  shared nodes computed once:\n")
				for _, st := range plan.Steps {
					g := opt.Memo.Group(st.Group)
					fmt.Printf("    group %d (%s), ~%.0f rows\n", st.Group, g.Sig, g.Props.Rows)
				}
			}
		}
		fmt.Println()
	}
}
