// Quickstart: the paper's Example 1. Two queries, (A⋈σB⋈C) and (σB⋈C⋈D),
// are optimized together through a long-lived Session; the common
// subexpression σ(B)⋈C is materialized once and reused, making the
// consolidated plan cheaper than the two locally optimal plans produced by
// a conventional optimizer.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/cost"
	"repro/internal/tpcd"
)

func main() {
	cat, batch := tpcd.ExampleOneInstance()
	sess, err := repro.NewSession(cat, cost.Default())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	for _, strategy := range []repro.Strategy{repro.Volcano, repro.Greedy, repro.MarginalGreedy} {
		res, err := sess.Optimize(ctx, batch, repro.WithStrategy(strategy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s cost %7.1f s   materialized %d node(s)   benefit %6.1f s\n",
			strategy, res.Cost/1000, len(res.Materialized), res.Benefit/1000)
		if strategy == repro.MarginalGreedy {
			fmt.Println()
			fmt.Println(res.Plan.String())
		}
	}
	st := sess.Stats()
	fmt.Printf("session: %d batches optimized, %d oracle calls, %d bestCost evaluations\n",
		st.Batches, st.OracleCalls, st.BCCalls)
}
