// Batch analytics: the scenario the paper's introduction motivates — a
// batch of related TPCD report queries submitted together (BQ3: Q3, Q5 and
// Q7, each run twice with different selection constants). The example
// optimizes the batch with all three strategies, prints the Figure-4-style
// comparison, and then actually executes the winning consolidated plan on
// deterministic synthetic data, verifying that every query returns the
// same answer as the unshared plan while doing less simulated I/O.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

func main() {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(3)

	fmt.Println("Optimizing BQ3 (Q3, Q5, Q7 — each with two selection constants):")
	results := map[core.Strategy]core.Result{}
	for _, s := range []core.Strategy{core.Volcano, core.Greedy, core.MarginalGreedy} {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			log.Fatal(err)
		}
		r := core.Run(opt, s)
		results[s] = r
		fmt.Printf("  %-15s cost %8.0f s   materialized %2d   opt time %v\n",
			s, r.Cost/1000, len(r.Materialized), r.OptTime)
	}

	// Execute the Volcano (unshared) and MarginalGreedy (shared) plans on
	// synthetic data and compare answers and simulated I/O.
	run := func(s core.Strategy) ([]exec.QueryResult, exec.Accounting) {
		opt, err := volcano.NewOptimizer(cat, cost.Default(), batch)
		if err != nil {
			log.Fatal(err)
		}
		plan := opt.Plan(results[s].MatSet())
		eng := exec.NewEngine(&exec.Generator{Cat: cat, Seed: 1, Cap: 3000}, opt.Memo)
		out, err := eng.RunConsolidated(plan)
		if err != nil {
			log.Fatal(err)
		}
		return out, eng.IO
	}
	unshared, ioU := run(core.Volcano)
	shared, ioS := run(core.MarginalGreedy)

	fmt.Println("\nExecution on synthetic data (rows capped at 3000/table):")
	for i := range unshared {
		same := len(unshared[i].Rows) == len(shared[i].Rows)
		fmt.Printf("  %-4s %4d rows   answers match: %v\n",
			unshared[i].Name, len(shared[i].Rows), same)
	}
	fmt.Printf("\nSimulated I/O (blocks, weighted): unshared %.0f vs shared %.0f\n",
		ioU.Total(), ioS.Total())
}
