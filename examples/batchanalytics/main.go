// Batch analytics: the scenario the paper's introduction motivates — a
// batch of related TPCD report queries submitted together (BQ3: Q3, Q5 and
// Q7, each run twice with different selection constants). The example
// optimizes the batch through one Session with all three strategies,
// prints the Figure-4-style comparison, and then actually executes the
// winning consolidated plan on deterministic synthetic data — with the
// executor's wavefront scheduler running independent materializations
// concurrently — verifying that every query returns the same answer as
// the unshared plan while doing less simulated I/O.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/tpcd"
)

func main() {
	cat := tpcd.Catalog(1)
	batch := tpcd.BQ(3)
	sess, err := repro.NewSession(cat, cost.Default(), repro.WithParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("Optimizing BQ3 (Q3, Q5, Q7 — each with two selection constants):")
	results := map[repro.Strategy]*repro.RunResult{}
	for _, s := range []repro.Strategy{repro.Volcano, repro.Greedy, repro.MarginalGreedy} {
		r, err := sess.Optimize(ctx, batch, repro.WithStrategy(s))
		if err != nil {
			log.Fatal(err)
		}
		results[s] = r
		fmt.Printf("  %-15s cost %8.0f s   materialized %2d   opt time %v   oracle calls %d\n",
			s, r.Cost/1000, len(r.Materialized), r.OptTime, r.Telemetry.OracleCalls)
	}

	// Execute the Volcano (unshared) and MarginalGreedy (shared) plans on
	// synthetic data and compare answers and simulated I/O; independent
	// materialization steps run on 4 workers.
	run := func(s repro.Strategy) ([]exec.QueryResult, exec.Accounting) {
		r := results[s]
		eng := exec.NewEngine(&exec.Generator{Cat: cat, Seed: 1, Cap: 3000}, r.Memo())
		eng.Parallelism = 4
		out, err := eng.RunConsolidated(r.Plan)
		if err != nil {
			log.Fatal(err)
		}
		return out, eng.IO
	}
	unshared, ioU := run(repro.Volcano)
	shared, ioS := run(repro.MarginalGreedy)

	fmt.Println("\nExecution on synthetic data (rows capped at 3000/table, 4 exec workers):")
	for i := range unshared {
		same := len(unshared[i].Rows) == len(shared[i].Rows)
		fmt.Printf("  %-4s %4d rows   answers match: %v\n",
			unshared[i].Name, len(shared[i].Rows), same)
	}
	fmt.Printf("\nSimulated I/O (blocks, weighted): unshared %.0f vs shared %.0f\n",
		ioU.Total(), ioS.Total())
}
