// Workload generation: a seeded synthetic batch of star/chain/snowflake
// queries over the TPCD schema is generated, optimized with MarginalGreedy,
// and compared against the no-MQO baseline. Generation is deterministic —
// rerunning this program prints byte-identical output for the generation
// half (optimization times vary, so only the costs are printed here).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/cost"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

func main() {
	spec := workload.Spec{
		Seed:       42,
		Queries:    24,
		Shape:      workload.Mixed,
		FanOut:     4,
		Sharing:    0.75, // 3 of 4 non-variant constants come from the shared pool
		SelectFrac: 0.8,
		AggFrac:    0.5,
	}
	batch, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d queries (seed %d): %s … %s\n",
		len(batch.Queries), spec.Seed, batch.Queries[0].Name, batch.Queries[len(batch.Queries)-1].Name)

	// Same spec, same batch — generation is a pure function of the Spec.
	again := workload.MustGenerate(spec)
	fmt.Printf("deterministic: %v\n", workload.Fingerprint(batch) == workload.Fingerprint(again))

	sess, err := repro.NewSession(tpcd.Catalog(1), cost.Default())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	noMQO, err := sess.Optimize(ctx, batch, repro.WithStrategy(repro.Volcano))
	if err != nil {
		log.Fatal(err)
	}
	marginal, err := sess.Optimize(ctx, batch, repro.WithStrategy(repro.MarginalGreedy))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no-MQO cost:          %8.0f s\n", noMQO.Cost/1000)
	fmt.Printf("MarginalGreedy cost:  %8.0f s  (%d subexpressions materialized, %.0f%% cheaper)\n",
		marginal.Cost/1000, len(marginal.Plan.Steps), marginal.Benefit/noMQO.Cost*100)
}
