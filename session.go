package repro

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/memo"
	"repro/internal/physical"
	"repro/internal/submod"
	"repro/internal/volcano"
)

// Progress is the per-round report delivered to WithProgress callbacks;
// cancelling the run's context from inside one stops the optimization at a
// deterministic round.
type Progress = submod.Progress

// StopReason says why a run ended early; StopNone marks a complete run.
type StopReason = submod.StopReason

// Re-exported stop reasons.
const (
	StopNone       = submod.StopNone
	StopCancelled  = submod.StopCancelled
	StopTimeBudget = submod.StopTimeBudget
	StopCallBudget = submod.StopCallBudget
	StopPanic      = submod.StopPanic
	StopPreempted  = submod.StopPreempted
)

// ErrPreempted is the cancellation cause that classifies a stop as
// StopPreempted; schedulers cancel a run's context with it (or use
// WithPreemptSignal, which does so at round boundaries only).
var ErrPreempted = submod.ErrPreempted

// Telemetry is the per-run accounting carried by every Result.
type Telemetry = core.Telemetry

// Checkpoint is the resumable token of an interrupted Optimize call: the
// round-boundary snapshot of the greedy scan plus the fingerprint of the
// search space it was taken against. It is pure JSON-able data with no
// session state, so it can travel to a client and resume on any session
// over the same catalog, batch, and operator flags — including after the
// original session was quarantined by a panic (the committed prefix is
// exact regardless of what the panic poisoned).
type Checkpoint struct {
	// Fingerprint identifies the compiled search space and operator flags
	// (physical.Searcher.Fingerprint). WithResume validates it against the
	// rebuilt optimizer and rejects a mismatch with ErrResumeMismatch
	// instead of resuming against a different problem.
	Fingerprint uint64 `json:"fingerprint"`
	// State is the algorithm snapshot; its Algorithm field decides the
	// strategy of the resumed run.
	State *submod.Checkpoint `json:"state"`
}

// ErrResumeMismatch reports a WithResume checkpoint taken against a
// different search space than the one the call rebuilt: different batch,
// catalog scale, rule ablations, or operator flags.
var ErrResumeMismatch = errors.New("repro: checkpoint does not match this batch's search space")

// FaultError is the error of an Optimize call stopped by a recovered
// panic. The process survived — the panic was isolated inside the oracle's
// worker pool — but this session's caches may be inconsistent: the caller
// must stop using the session (a pool should quarantine it). The committed
// greedy prefix is still exact, so Checkpoint (when the run had selected
// state) resumes on a fresh session; Telemetry reports the faulted run's
// accounting, which is deliberately NOT added to the session Stats.
type FaultError struct {
	// Panic is the recovered panic (a *faultinject.PanicError with the
	// panic value and the stack captured at the recovery site).
	Panic error
	// Checkpoint resumes the interrupted run's committed prefix; nil when
	// the run faulted before it had any state.
	Checkpoint *Checkpoint
	// Telemetry is the faulted run's accounting (Stopped == StopPanic).
	Telemetry Telemetry
}

// Error implements error.
func (e *FaultError) Error() string { return "repro: optimization faulted: " + e.Panic.Error() }

// Unwrap exposes the recovered panic to errors.Is/As.
func (e *FaultError) Unwrap() error { return e.Panic }

// config carries the session and per-call knobs; per-call options override
// the session's defaults.
type config struct {
	strategy    Strategy
	parallelism int
	timeBudget  time.Duration
	callBudget  int
	hasBudget   bool
	progress    func(Progress)
	extendedOps bool
	memoOpts    []memo.Option
	resume      *Checkpoint
	warmOracle  bool
	preempt     func() bool
}

// Option configures a Session (defaults for every call) or a single
// Session.Optimize call.
type Option func(*config)

// WithStrategy selects the MQO algorithm (default MarginalGreedy).
func WithStrategy(s Strategy) Option {
	return func(c *config) { c.strategy = s }
}

// WithParallelism bounds the worker pool evaluating candidate sets in a
// greedy round: 0 means GOMAXPROCS, 1 forces sequential evaluation.
// Results are bit-identical at every setting. (The executor's wavefront
// workers are the same knob shape but configured separately, on
// exec.Engine.Parallelism.)
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithTimeBudget caps the wall-clock time of the optimization run — the
// bc(∅) setup, decomposition and greedy search phases — of one Optimize
// call (0 = none). When it expires the greedy scan stops between oracle
// rounds and the call returns the best-so-far materialization set with
// Telemetry.Stopped = StopTimeBudget. DAG construction before the run and
// plan extraction after it are not covered (both are near-linear in the
// batch, orders of magnitude below the search; see RunResult.BuildTime and
// ExtractTime for what they cost).
func WithTimeBudget(d time.Duration) Option {
	return func(c *config) { c.timeBudget = d }
}

// WithOracleCallBudget caps the memoized-distinct mb(S) oracle evaluations
// the algorithm may spend; n = 0 forbids any, so the strategies return the
// empty set. Budget exhaustion is checked between rounds, so results are
// deterministic for a given budget.
func WithOracleCallBudget(n int) Option {
	return func(c *config) { c.callBudget, c.hasBudget = n, true }
}

// WithProgress installs a per-round callback.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// WithExtendedOps enables the extended operator set (hash join, hash
// aggregation) beyond the paper's rules.
func WithExtendedOps(on bool) Option {
	return func(c *config) { c.extendedOps = on }
}

// WithWarmOracle lets runs consume memoized oracle values earlier runs
// over the same search space published into the session's shared cache,
// skipping those oracle calls entirely (Telemetry.SharedOracleHits counts
// them; OracleCalls+SharedOracleHits is the cold cost). Every run always
// publishes its values; consuming is opt-in because it changes call
// accounting — budgets, quota charges — for repeated identical batches,
// which cold-replay determinism otherwise relies on. ImportCache turns it
// on implicitly: a session warm-started from a snapshot exists to spend
// fewer calls.
func WithWarmOracle(on bool) Option {
	return func(c *config) { c.warmOracle = on }
}

// WithPreemptSignal installs a scheduler's suspend signal: it is polled
// after every completed greedy round, and when it returns true the run
// stops at that round boundary with Telemetry.Stopped == StopPreempted
// and (for a resumable lazy strategy) a Checkpoint that WithResume
// continues bit-identically. Because the poll happens only between
// rounds, the suspended segments' telemetry is conserving: summing each
// segment's oracle work (MergeSegments) equals an unpreempted run's.
func WithPreemptSignal(fn func() bool) Option {
	return func(c *config) { c.preempt = fn }
}

// MergeSegments folds the per-segment telemetry of a preempted-and-resumed
// run into the telemetry an unpreempted run would have reported: additive
// counters (oracle calls, bestCost work, cache traffic, phase times) sum
// across segments, while the scan-cumulative counters (Rounds, Pruned,
// Stale, Reused — a resumed segment continues its predecessor's counts)
// and the stop reason come from the final segment. An empty slice returns
// a zero Telemetry.
func MergeSegments(segs []Telemetry) Telemetry {
	var out Telemetry
	for i, t := range segs {
		out.OracleCalls += t.OracleCalls
		out.BCCalls += t.BCCalls
		out.CacheHits += t.CacheHits
		out.SharedHits += t.SharedHits
		out.ComputedKeys += t.ComputedKeys
		out.SharedOracleHits += t.SharedOracleHits
		out.SetupTime += t.SetupTime
		out.SearchTime += t.SearchTime
		out.FinalizeTime += t.FinalizeTime
		out.TotalTime += t.TotalTime
		if i == len(segs)-1 {
			out.Rounds = t.Rounds
			out.Pruned = t.Pruned
			out.Stale = t.Stale
			out.Reused = t.Reused
			out.Stopped = t.Stopped
		}
	}
	if n := out.CacheHits + out.SharedHits + out.ComputedKeys; n > 0 {
		out.CacheHitRate = float64(out.CacheHits+out.SharedHits) / float64(n)
	}
	return out
}

// WithMemoOptions forwards DAG-construction options (rule ablations) to
// memo.Build.
func WithMemoOptions(opts ...memo.Option) Option {
	return func(c *config) { c.memoOpts = append(c.memoOpts, opts...) }
}

// WithResume continues an interrupted run from its checkpoint instead of
// restarting: the call rebuilds the DAG for the batch as usual, validates
// the checkpoint's fingerprint against it (ErrResumeMismatch on any
// difference), and re-enters the greedy scan exactly where it stopped. The
// resumed strategy is the checkpoint's — WithStrategy is ignored — and
// budgets apply to the continuation, which can itself stop and return a
// further checkpoint. Resume-after-stop is bit-identical to an
// uninterrupted run over the same batch.
func WithResume(cp *Checkpoint) Option {
	return func(c *config) { c.resume = cp }
}

// SessionStats aggregates telemetry across a session's Optimize calls.
// Every counter is the exact sum of the corresponding per-call Telemetry
// field, so a caller holding all RunResults can reconcile the aggregate
// against them (the serving front end's race-stress tests do). The JSON
// tags are the wire contract of /v1/stats; durations marshal as
// nanoseconds.
type SessionStats struct {
	Batches      int `json:"batches"`       // Optimize calls completed
	Interrupted  int `json:"interrupted"`   // calls stopped by a budget or cancellation
	OracleCalls  int `json:"oracle_calls"`  // total memoized-distinct oracle calls
	BCCalls      int `json:"bc_calls"`      // total bestCost invocations
	CacheHits    int `json:"cache_hits"`    // worker-private (L1) cache hits
	SharedHits   int `json:"shared_hits"`   // session SharedCache (L2) hits
	ComputedKeys int `json:"computed_keys"` // fresh (group, order, mask) computations
	// SharedOracleHits counts whole oracle evaluations served from the
	// session cache's cross-run memo — calls a cold session would have paid
	// for but this one did not (warm-start savings).
	SharedOracleHits int `json:"shared_oracle_hits"`
	Rounds           int `json:"rounds"`              // completed greedy rounds
	Invalidations    int `json:"cache_invalidations"` // InvalidateCache calls
	// Faults counts Optimize calls stopped by a recovered panic. A faulted
	// call contributes ONLY here: its telemetry is excluded from every
	// other counter (and the call returns a *FaultError, not a RunResult),
	// so the sum-over-responses reconciliation above still balances.
	Faults      int           `json:"faults"`
	BuildTime   time.Duration `json:"build_ns"`   // DAG construction
	OptTime     time.Duration `json:"opt_ns"`     // strategy runs
	ExtractTime time.Duration `json:"extract_ns"` // consolidated-plan extraction
	// RecipeHits / RecipeMisses count per-query sub-DAG interner lookups
	// during combined-DAG builds (memo.BuildCache): a hit replays a stored
	// expansion recipe instead of re-enumerating the query's join subsets.
	// They are session-level build accounting, not per-run telemetry, so
	// they are excluded from the sum-over-responses reconciliation.
	RecipeHits   int64 `json:"recipe_hits"`
	RecipeMisses int64 `json:"recipe_misses"`
}

// Session is a long-lived handle for optimizing many batches against one
// catalog: it fixes the catalog, the cost model and the tuning knobs
// (strategy, parallelism, budgets) once, and every Optimize call reuses
// them while building the batch-specific DAG state per call. Optimize is
// safe for concurrent use — each call owns its optimizer — and the session
// aggregates telemetry across calls (Stats).
//
// The session also owns a sharded cross-call cost cache
// (physical.SharedCache) attached to every call's searcher: concurrent
// scan workers share what they learn within a call, and — because entries
// are namespaced by the combined DAG's structural fingerprint — a batch
// identical to an earlier one starts with a warm cache instead of
// relearning every (group, order, mask) cost. Cached costs are pure
// functions of their keys, so sharing never changes a result
// (Telemetry.SharedHits reports how often it helped).
type Session struct {
	cat      *catalog.Catalog
	model    cost.Model
	defaults config
	cache    *physical.SharedCache
	// build is the per-query sub-DAG interner (memo.BuildCache): recipes
	// for structurally identical queries are replayed instead of
	// re-enumerated, so combined-DAG build cost amortizes across a stream
	// of similar batches. Recipes are pure functions of (catalog, query)
	// and never invalidate within a session.
	build *memo.BuildCache
	// warmed flips on when a snapshot is imported: from then on every run
	// consumes memoized oracle values from the shared cache (see
	// WithWarmOracle), which is the entire point of warm-starting.
	warmed atomic.Bool

	mu    sync.Mutex
	stats SessionStats
}

// NewSession creates a session over a catalog and cost model. Options set
// the defaults applied to every Optimize call; per-call options override
// them.
func NewSession(cat *catalog.Catalog, model cost.Model, opts ...Option) (*Session, error) {
	if cat == nil {
		return nil, errors.New("repro: nil catalog")
	}
	s := &Session{
		cat:      cat,
		model:    model,
		defaults: config{strategy: MarginalGreedy},
		cache:    physical.NewSharedCache(),
		build:    memo.NewBuildCache(),
	}
	for _, o := range opts {
		o(&s.defaults)
	}
	return s, nil
}

// InvalidateCache drops the session's shared cross-call cost cache in
// O(1). Correctness never requires it — entries are namespaced by DAG
// fingerprint and operator flags — but a long-running session may use it
// to bound memory or force cold-cache measurements. A session pool evicting
// this session should call it so the dropped entry releases its cache
// memory immediately; Stats counts the invalidations.
func (s *Session) InvalidateCache() {
	s.cache.Invalidate()
	s.mu.Lock()
	s.stats.Invalidations++
	s.mu.Unlock()
}

// CacheEntries reports how many live entries the session's shared
// cross-call cost cache currently holds — cost keys and memoized oracle
// values together. It is the warmth metric the serving tier exposes per
// pooled session.
func (s *Session) CacheEntries() int { return s.cache.Len() }

// ExportCache snapshots the session's shared cost cache — every cost key
// and memoized oracle value, across all search-space namespaces the
// session has served — into a portable, versioned physical.CacheSnapshot.
// scope is an owner-chosen label (the serving tier uses the catalog pool
// key) that ImportCache verifies, so a snapshot taken for one catalog
// configuration cannot be imported into another by accident. The snapshot
// is canonical: exporting, importing into a fresh session and exporting
// again yields byte-identical encodings.
func (s *Session) ExportCache(scope string) *physical.CacheSnapshot {
	return s.cache.Export(scope)
}

// ImportCache merges a snapshot exported by ExportCache into the session's
// shared cache, returning the number of entries imported. A scope mismatch
// is rejected with a *physical.SnapshotError before anything is merged.
// Cached values are pure functions of their namespaced keys, so importing
// can never change an optimization result — a warm-started session only
// spends fewer oracle calls reaching the bit-identical answer (the serving
// tier's warm-join path relies on exactly that).
func (s *Session) ImportCache(snap *physical.CacheSnapshot, scope string) (int, error) {
	n, err := s.cache.Import(snap, scope)
	if err == nil {
		s.warmed.Store(true)
	}
	return n, err
}

// RunResult is the outcome of one Session.Optimize call: the strategy
// result (with telemetry), the extracted consolidated plan, and the
// call-level phase times.
type RunResult struct {
	Result
	Plan        *Plan
	BuildTime   time.Duration // combined-DAG construction
	ExtractTime time.Duration // consolidated-plan extraction
	// Checkpoint, set when the run stopped early under a resumable lazy
	// strategy, is the token WithResume continues from. (It shadows the
	// embedded core result's raw snapshot, adding the fingerprint pin.)
	Checkpoint *Checkpoint

	opt *volcano.Optimizer
}

// Validate audits the extracted consolidated plan against the cost search
// (structure, orders, and cost totals).
func (r *RunResult) Validate() error {
	return r.opt.Searcher.ValidatePlan(r.Plan, r.MatSet())
}

// Memo exposes the combined DAG the plan was extracted from; the executor
// (internal/exec) resolves group properties against it.
func (r *RunResult) Memo() *memo.Memo { return r.opt.Memo }

// Optimize runs multi-query optimization over one batch. ctx cancels the
// run between oracle rounds (and between individual evaluations of an
// in-flight concurrent batch); budgets behave the same way, so an
// interrupted call still returns a deterministic best-so-far result, its
// plan, and telemetry explaining where the time went. With no budget set
// the chosen sets and costs are bit-identical to the one-shot Optimize
// facade (and to the seed-oracle goldens).
func (s *Session) Optimize(ctx context.Context, batch *logical.Batch, opts ...Option) (*RunResult, error) {
	return s.runBatch(ctx, batch, s.mergeConfig(opts))
}

// mergeConfig layers per-call options over the session defaults.
func (s *Session) mergeConfig(opts []Option) config {
	cfg := s.defaults
	cfg.memoOpts = append([]memo.Option(nil), s.defaults.memoOpts...)
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// runBatch is the shared body of Optimize and OptimizeShared: build the
// combined DAG (through the sub-DAG interner), run the strategy, extract
// the plan, publish cache learning, and account session stats.
func (s *Session) runBatch(ctx context.Context, batch *logical.Batch, cfg config) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.memoOpts = append(cfg.memoOpts, memo.WithBuildCache(s.build))

	buildStart := time.Now()
	opt, err := volcano.NewOptimizer(s.cat, s.model, batch, cfg.memoOpts...)
	if err != nil {
		return nil, err
	}
	build := time.Since(buildStart)
	opt.Searcher.Parallelism = cfg.parallelism
	opt.Searcher.AttachSharedCache(s.cache)
	if cfg.extendedOps {
		opt.SetExtendedOps(true)
	}

	cc := core.Config{
		TimeBudget:    cfg.timeBudget,
		Progress:      cfg.progress,
		Parallelism:   cfg.parallelism,
		WarmOracle:    cfg.warmOracle || s.warmed.Load(),
		PreemptSignal: cfg.preempt,
	}
	if cfg.hasBudget {
		cc = cc.LimitOracleCalls(cfg.callBudget)
	}
	var res Result
	if cfg.resume != nil {
		if cfg.resume.State == nil {
			return nil, errors.New("repro: checkpoint carries no state")
		}
		if cfg.resume.Fingerprint != opt.Searcher.Fingerprint() {
			return nil, ErrResumeMismatch
		}
		res, err = core.ResumeWith(ctx, opt, cfg.resume.State, cc)
		if err != nil {
			return nil, err
		}
	} else {
		res = core.RunWith(ctx, opt, cfg.strategy, cc)
	}
	var cp *Checkpoint
	if res.Checkpoint != nil {
		cp = &Checkpoint{Fingerprint: opt.Searcher.Fingerprint(), State: res.Checkpoint}
	}
	if res.Fault != nil {
		// The run was stopped by a recovered panic. The searcher's caches
		// may be inconsistent, so neither plan extraction nor cache
		// publication may touch them (a poisoned entry published into the
		// session cache would outlive the searcher); only the Faults
		// counter records the call, keeping the stats-vs-responses
		// reconciliation balanced. The session itself must be quarantined
		// by its owner — the shared cache it already holds is suspect.
		s.mu.Lock()
		s.stats.Faults++
		s.mu.Unlock()
		return nil, &FaultError{Panic: res.Fault, Checkpoint: cp, Telemetry: res.Telemetry}
	}

	extractStart := time.Now()
	plan := opt.Plan(res.MatSet())
	extract := time.Since(extractStart)
	// Publish this call's cost learning into the session cache so later
	// batches with the same DAG fingerprint start warm.
	opt.Searcher.PublishCache()

	s.mu.Lock()
	s.stats.Batches++
	if res.Telemetry.Stopped != StopNone {
		s.stats.Interrupted++
	}
	s.stats.OracleCalls += res.Telemetry.OracleCalls
	s.stats.BCCalls += res.Telemetry.BCCalls
	s.stats.CacheHits += res.Telemetry.CacheHits
	s.stats.SharedHits += res.Telemetry.SharedHits
	s.stats.ComputedKeys += res.Telemetry.ComputedKeys
	s.stats.SharedOracleHits += res.Telemetry.SharedOracleHits
	s.stats.Rounds += res.Telemetry.Rounds
	s.stats.BuildTime += build
	s.stats.OptTime += res.OptTime
	s.stats.ExtractTime += extract
	s.mu.Unlock()

	return &RunResult{
		Result:      res,
		Plan:        plan,
		BuildTime:   build,
		ExtractTime: extract,
		Checkpoint:  cp,
		opt:         opt,
	}, nil
}

// Stats returns the telemetry aggregated over the session's calls so far.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	st := s.stats
	s.mu.Unlock()
	st.RecipeHits, st.RecipeMisses = s.build.Stats()
	return st
}
