package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/logical"
	"repro/internal/tpcd"
	"repro/internal/workload"
)

// memberBatches generates three member batches (as three independent
// requests would) from one workload spec, split round-robin so members
// share structure without being identical.
func memberBatches(t *testing.T, shape workload.Shape, sharing float64, seed int64) []*logical.Batch {
	t.Helper()
	spec := workload.DefaultSpec(12, sharing)
	spec.Shape = shape
	spec.Seed = seed
	batch, err := workload.Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	groups := []*logical.Batch{{}, {}, {}}
	for i, q := range batch.Queries {
		groups[i%3].Queries = append(groups[i%3].Queries, q)
	}
	return groups
}

// TestBatchedVsSoloParity is the batched-vs-solo property pass: for
// generated workloads across shapes and sharing regimes, every member's
// attributed slice of a coalesced run must be cost-valid (components
// conserve against the batch totals exactly), its benefit must be no
// worse than its solo-optimized benefit minus the shared-node credit it
// received, and attribution must be deterministic for a fixed seed.
func TestBatchedVsSoloParity(t *testing.T) {
	for _, shape := range []workload.Shape{workload.Star, workload.Chain, workload.Snowflake} {
		for _, sharing := range []float64{0.25, 0.75} {
			t.Run(fmt.Sprintf("%v_%.2f", shape, sharing), func(t *testing.T) {
				groups := memberBatches(t, shape, sharing, 42)

				shared := newTestSession(t)
				sres, err := shared.OptimizeShared(context.Background(), groups)
				if err != nil {
					t.Fatalf("OptimizeShared: %v", err)
				}
				if len(sres.Attributions) != len(groups) {
					t.Fatalf("%d attributions for %d members", len(sres.Attributions), len(groups))
				}

				// Conservation: attributed costs re-sum to the batch run's
				// totals, telemetry conserves field-for-field.
				var sumCost, sumVolcano, sumBenefit float64
				var sumTel Telemetry
				matCounts := map[int]int{}
				for mi, a := range sres.Attributions {
					if a.QueryCount != len(groups[mi].Queries) {
						t.Fatalf("member %d: %d queries attributed, want %d", mi, a.QueryCount, len(groups[mi].Queries))
					}
					if a.Cost < 0 || a.VolcanoCost < 0 {
						t.Fatalf("member %d: negative attributed cost %v/%v", mi, a.Cost, a.VolcanoCost)
					}
					sumCost += a.Cost
					sumVolcano += a.VolcanoCost
					sumBenefit += a.Benefit
					addTelemetry(&sumTel, a.Telemetry)
					for _, g := range a.Materialized {
						if !sres.Set.Has(g) {
							t.Fatalf("member %d attributed node %d outside the chosen set", mi, g)
						}
						if !a.Set.Has(g) {
							t.Fatalf("member %d: Materialized and Set disagree on %d", mi, g)
						}
						// The node must actually serve one of the member's queries.
						serves := false
						for _, ri := range sres.opt.Searcher.RootsReaching(g) {
							if ri >= a.QueryOffset && ri < a.QueryOffset+a.QueryCount {
								serves = true
								break
							}
						}
						if !serves {
							t.Fatalf("member %d attributed node %d that serves none of its queries", mi, g)
						}
						matCounts[int(g)]++
					}
				}
				// Every chosen node is attributed to at least one member and
				// never duplicated within one member.
				for _, g := range sres.Materialized {
					if matCounts[int(g)] == 0 {
						t.Fatalf("chosen node %d attributed to no member", g)
					}
				}
				if !almostEqual(sumCost, sres.Cost) {
					t.Fatalf("Σ member cost %v != batch bc(S) %v", sumCost, sres.Cost)
				}
				if !almostEqual(sumVolcano, sres.VolcanoCost) {
					t.Fatalf("Σ member volcano %v != batch bc(∅) %v", sumVolcano, sres.VolcanoCost)
				}
				if !almostEqual(sumBenefit, sres.Benefit) {
					t.Fatalf("Σ member benefit %v != batch benefit %v", sumBenefit, sres.Benefit)
				}
				runTel := sres.Telemetry
				runTel.CacheHitRate = 0 // a rate, recomputed per share, not summable
				if sumTel != runTel {
					t.Fatalf("telemetry shares do not conserve:\n  Σ   %+v\n  run %+v", sumTel, runTel)
				}

				// Per-member floor: batching may shift shared build costs
				// onto a member, but never by more than the credit it
				// received for nodes others paid toward.
				for mi, a := range sres.Attributions {
					solo := newTestSession(t)
					srr, err := solo.Optimize(context.Background(), groups[mi])
					if err != nil {
						t.Fatalf("solo member %d: %v", mi, err)
					}
					if a.Benefit+a.SharedCredit < srr.Benefit-1e-6*absf(srr.Benefit)-1e-9 {
						t.Fatalf("member %d: attributed benefit %v + credit %v < solo benefit %v",
							mi, a.Benefit, a.SharedCredit, srr.Benefit)
					}
				}

				// Determinism: a repeat shared run on a fresh session
				// attributes identically.
				shared2 := newTestSession(t)
				sres2, err := shared2.OptimizeShared(context.Background(), memberBatches(t, shape, sharing, 42))
				if err != nil {
					t.Fatalf("repeat OptimizeShared: %v", err)
				}
				for mi := range sres.Attributions {
					a, b := sres.Attributions[mi], sres2.Attributions[mi]
					if a.Cost != b.Cost || a.VolcanoCost != b.VolcanoCost || a.Benefit != b.Benefit || a.SharedCredit != b.SharedCredit {
						t.Fatalf("member %d attribution not deterministic: %+v vs %+v", mi, a, b)
					}
					if len(a.Materialized) != len(b.Materialized) {
						t.Fatalf("member %d set not deterministic", mi)
					}
					for i := range a.Materialized {
						if a.Materialized[i] != b.Materialized[i] {
							t.Fatalf("member %d set not deterministic", mi)
						}
					}
				}
			})
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// addTelemetry accumulates the integer/duration fields used by the
// conservation checks; CacheHitRate is recomputed, Stopped must agree.
func addTelemetry(dst *Telemetry, t Telemetry) {
	dst.OracleCalls += t.OracleCalls
	dst.BCCalls += t.BCCalls
	dst.CacheHits += t.CacheHits
	dst.SharedHits += t.SharedHits
	dst.ComputedKeys += t.ComputedKeys
	dst.Rounds += t.Rounds
	dst.Pruned += t.Pruned
	dst.Stale += t.Stale
	dst.Reused += t.Reused
	dst.SetupTime += t.SetupTime
	dst.SearchTime += t.SearchTime
	dst.FinalizeTime += t.FinalizeTime
	dst.TotalTime += t.TotalTime
	dst.Stopped = t.Stopped
}

// TestBatchedSingletonBitIdentical pins the singleton fast path: a shared
// run with one member is bit-identical to a plain Optimize call, so a
// batching server that catches a lone request in a tick serves exactly
// what the solo path would have.
func TestBatchedSingletonBitIdentical(t *testing.T) {
	batch := tpcd.BQ(2)
	solo := newTestSession(t)
	want, err := solo.Optimize(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	shared := newTestSession(t)
	got, err := shared.OptimizeShared(context.Background(), []*logical.Batch{batch})
	if err != nil {
		t.Fatal(err)
	}
	a := got.Attributions[0]
	if a.Cost != want.Cost || a.VolcanoCost != want.VolcanoCost || a.Benefit != want.Benefit {
		t.Fatalf("singleton attribution %v/%v/%v != solo %v/%v/%v",
			a.Cost, a.VolcanoCost, a.Benefit, want.Cost, want.VolcanoCost, want.Benefit)
	}
	if a.SharedCredit != 0 {
		t.Fatalf("singleton shared credit %v != 0", a.SharedCredit)
	}
	if len(a.Materialized) != len(want.Materialized) {
		t.Fatalf("singleton set %v != solo %v", a.Materialized, want.Materialized)
	}
	for i := range a.Materialized {
		if a.Materialized[i] != want.Materialized[i] {
			t.Fatalf("singleton set %v != solo %v", a.Materialized, want.Materialized)
		}
	}
	at, wt := a.Telemetry, want.Telemetry
	// Durations are wall-clock and differ across runs; the deterministic
	// counters must be bit-identical.
	at.SetupTime, at.SearchTime, at.FinalizeTime, at.TotalTime = 0, 0, 0, 0
	wt.SetupTime, wt.SearchTime, wt.FinalizeTime, wt.TotalTime = 0, 0, 0, 0
	if at != wt {
		t.Fatalf("singleton telemetry differs:\n  %+v\n  %+v", at, wt)
	}
}

// TestBatchedSharedRejectsResume pins the API contract: checkpoints bind
// to a combined search space and cannot resume through OptimizeShared.
func TestBatchedSharedRejectsResume(t *testing.T) {
	sess := newTestSession(t)
	_, err := sess.OptimizeShared(context.Background(), []*logical.Batch{tpcd.BQ(1)},
		WithResume(&Checkpoint{}))
	if err == nil {
		t.Fatal("OptimizeShared accepted a resume checkpoint")
	}
}

// The oracle-savings gate for coalescing lives at the serving layer
// (internal/server TestBatchCoalesceOracleSavings): identical member
// batches are deduplicated by structural fingerprint before the shared
// run, so eight identical clients cost one solo run, not eight.
