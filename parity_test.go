package repro

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/memo"
	"repro/internal/tpcd"
	"repro/internal/volcano"
)

// The golden table below was produced by the seed implementation of the
// bestCost oracle (map NodeSets, string order keys, sequential scans)
// before the interned-order/bitset/parallel rewrite. The rewrite is a pure
// representation change, so every strategy must reproduce these costs
// bit-for-bit (costs are compared after %.6f formatting, which the seed
// values were recorded with) and choose exactly the same materialization
// sets, for every TPCD batch at both scale factors.
type parityRow struct {
	sf    float64
	bq    int
	strat core.Strategy
	cost  string
	mat   []memo.GroupID
}

var parityGolden = []parityRow{
	{sf: 1, bq: 1, strat: core.Volcano, cost: "1435311.200000", mat: []memo.GroupID{}},
	{sf: 1, bq: 1, strat: core.Greedy, cost: "922424.600000", mat: []memo.GroupID{4}},
	{sf: 1, bq: 1, strat: core.LazyGreedyStrategy, cost: "922424.600000", mat: []memo.GroupID{4}},
	{sf: 1, bq: 1, strat: core.MarginalGreedy, cost: "922424.600000", mat: []memo.GroupID{4}},
	{sf: 1, bq: 1, strat: core.LazyMarginalGreedy, cost: "922424.600000", mat: []memo.GroupID{4}},
	{sf: 1, bq: 1, strat: core.MaterializeAll, cost: "1062318.000000", mat: []memo.GroupID{1, 2, 4}},
	{sf: 1, bq: 1, strat: core.VolcanoSH, cost: "965098.800000", mat: []memo.GroupID{1, 2}},
	{sf: 1, bq: 2, strat: core.Volcano, cost: "2761742.400000", mat: []memo.GroupID{}},
	{sf: 1, bq: 2, strat: core.Greedy, cost: "1701941.200000", mat: []memo.GroupID{4, 25}},
	{sf: 1, bq: 2, strat: core.LazyGreedyStrategy, cost: "1701941.200000", mat: []memo.GroupID{4, 25}},
	{sf: 1, bq: 2, strat: core.MarginalGreedy, cost: "1707836.400000", mat: []memo.GroupID{1, 2, 25}},
	{sf: 1, bq: 2, strat: core.LazyMarginalGreedy, cost: "1707836.400000", mat: []memo.GroupID{1, 2, 25}},
	{sf: 1, bq: 2, strat: core.MaterializeAll, cost: "7177059952.800000", mat: []memo.GroupID{1, 2, 4, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}},
	{sf: 1, bq: 2, strat: core.VolcanoSH, cost: "2287319.000000", mat: []memo.GroupID{1, 2, 12}},
	{sf: 1, bq: 3, strat: core.Volcano, cost: "4035948.400000", mat: []memo.GroupID{}},
	{sf: 1, bq: 3, strat: core.Greedy, cost: "2406938.600000", mat: []memo.GroupID{4, 25, 65}},
	{sf: 1, bq: 3, strat: core.LazyGreedyStrategy, cost: "2406938.600000", mat: []memo.GroupID{4, 25, 65}},
	{sf: 1, bq: 3, strat: core.MarginalGreedy, cost: "2405775.000000", mat: []memo.GroupID{1, 2, 25, 65}},
	{sf: 1, bq: 3, strat: core.LazyMarginalGreedy, cost: "2405775.000000", mat: []memo.GroupID{1, 2, 25, 65}},
	{sf: 1, bq: 3, strat: core.MaterializeAll, cost: "7180352795.199998", mat: []memo.GroupID{1, 2, 4, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65}},
	{sf: 1, bq: 3, strat: core.VolcanoSH, cost: "3247291.200000", mat: []memo.GroupID{1, 2, 18, 52, 62, 63}},
	{sf: 1, bq: 4, strat: core.Volcano, cost: "5384756.800000", mat: []memo.GroupID{}},
	{sf: 1, bq: 4, strat: core.Greedy, cost: "3595097.800000", mat: []memo.GroupID{4, 25, 65, 98}},
	{sf: 1, bq: 4, strat: core.LazyGreedyStrategy, cost: "3595097.800000", mat: []memo.GroupID{4, 25, 65, 98}},
	{sf: 1, bq: 4, strat: core.MarginalGreedy, cost: "3600994.000000", mat: []memo.GroupID{1, 2, 25, 65, 96, 98}},
	{sf: 1, bq: 4, strat: core.LazyMarginalGreedy, cost: "3600994.000000", mat: []memo.GroupID{1, 2, 25, 65, 96, 98}},
	{sf: 1, bq: 4, strat: core.MaterializeAll, cost: "7786550753.799999", mat: []memo.GroupID{1, 2, 4, 12, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 82, 84, 86, 88, 90, 91, 92, 94, 96, 97, 98, 100}},
	{sf: 1, bq: 4, strat: core.VolcanoSH, cost: "4612448.200000", mat: []memo.GroupID{1, 2, 33, 52, 62, 63, 96}},
	{sf: 1, bq: 5, strat: core.Volcano, cost: "6832476.400000", mat: []memo.GroupID{}},
	{sf: 1, bq: 5, strat: core.Greedy, cost: "4634667.000000", mat: []memo.GroupID{4, 25, 65, 82, 96}},
	{sf: 1, bq: 5, strat: core.LazyGreedyStrategy, cost: "4634667.000000", mat: []memo.GroupID{4, 25, 65, 82, 96}},
	{sf: 1, bq: 5, strat: core.MarginalGreedy, cost: "4590276.000000", mat: []memo.GroupID{1, 2, 25, 65, 96, 98, 134}},
	{sf: 1, bq: 5, strat: core.LazyMarginalGreedy, cost: "4590276.000000", mat: []memo.GroupID{1, 2, 25, 65, 96, 98, 134}},
	{sf: 1, bq: 5, strat: core.MaterializeAll, cost: "7788531755.799998", mat: []memo.GroupID{1, 2, 4, 12, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 82, 84, 86, 88, 90, 91, 92, 94, 96, 97, 98, 100, 119, 121, 125, 127, 130, 132, 134}},
	{sf: 1, bq: 5, strat: core.VolcanoSH, cost: "6060167.800000", mat: []memo.GroupID{1, 2, 33, 52, 62, 63, 96}},
	{sf: 1, bq: 6, strat: core.Volcano, cost: "8801966.600000", mat: []memo.GroupID{}},
	{sf: 1, bq: 6, strat: core.Greedy, cost: "6166970.000000", mat: []memo.GroupID{4, 12, 25, 65, 82, 96, 152}},
	{sf: 1, bq: 6, strat: core.LazyGreedyStrategy, cost: "6166970.000000", mat: []memo.GroupID{4, 12, 25, 65, 82, 96, 152}},
	{sf: 1, bq: 6, strat: core.MarginalGreedy, cost: "6111166.800000", mat: []memo.GroupID{1, 2, 12, 25, 65, 96, 98, 134, 152}},
	{sf: 1, bq: 6, strat: core.LazyMarginalGreedy, cost: "6111166.800000", mat: []memo.GroupID{1, 2, 12, 25, 65, 96, 98, 134, 152}},
	{sf: 1, bq: 6, strat: core.MaterializeAll, cost: "7790118440.000000", mat: []memo.GroupID{1, 2, 4, 12, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 82, 84, 86, 88, 90, 91, 92, 94, 96, 97, 98, 100, 119, 121, 125, 127, 130, 132, 134, 152, 159}},
	{sf: 1, bq: 6, strat: core.VolcanoSH, cost: "7534017.800000", mat: []memo.GroupID{1, 2, 12, 33, 52, 62, 63, 96, 152}},
	{sf: 100, bq: 1, strat: core.Volcano, cost: "150502461.600000", mat: []memo.GroupID{}},
	{sf: 100, bq: 1, strat: core.Greedy, cost: "103477015.600000", mat: []memo.GroupID{1, 2}},
	{sf: 100, bq: 1, strat: core.LazyGreedyStrategy, cost: "103477015.600000", mat: []memo.GroupID{1, 2}},
	{sf: 100, bq: 1, strat: core.MarginalGreedy, cost: "113929982.600000", mat: []memo.GroupID{4}},
	{sf: 100, bq: 1, strat: core.LazyMarginalGreedy, cost: "113929982.600000", mat: []memo.GroupID{4}},
	{sf: 100, bq: 1, strat: core.MaterializeAll, cost: "116006219.200000", mat: []memo.GroupID{1, 2, 4}},
	{sf: 100, bq: 1, strat: core.VolcanoSH, cost: "103477015.600000", mat: []memo.GroupID{1, 2}},
	{sf: 100, bq: 2, strat: core.Volcano, cost: "443058078.800000", mat: []memo.GroupID{}},
	{sf: 100, bq: 2, strat: core.Greedy, cost: "265784010.200000", mat: []memo.GroupID{4, 25}},
	{sf: 100, bq: 2, strat: core.LazyGreedyStrategy, cost: "265784010.200000", mat: []memo.GroupID{4, 25}},
	{sf: 100, bq: 2, strat: core.MarginalGreedy, cost: "265784010.200000", mat: []memo.GroupID{4, 25}},
	{sf: 100, bq: 2, strat: core.LazyMarginalGreedy, cost: "265784010.200000", mat: []memo.GroupID{4, 25}},
	{sf: 100, bq: 2, strat: core.MaterializeAll, cost: "71705546762218.984375", mat: []memo.GroupID{1, 2, 4, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32}},
	{sf: 100, bq: 2, strat: core.VolcanoSH, cost: "333647777.000000", mat: []memo.GroupID{1, 2, 12, 19, 25}},
	{sf: 100, bq: 3, strat: core.Volcano, cost: "577976594.400000", mat: []memo.GroupID{}},
	{sf: 100, bq: 3, strat: core.Greedy, cost: "338190953.800000", mat: []memo.GroupID{4, 25, 65}},
	{sf: 100, bq: 3, strat: core.LazyGreedyStrategy, cost: "338190953.800000", mat: []memo.GroupID{4, 25, 65}},
	{sf: 100, bq: 3, strat: core.MarginalGreedy, cost: "340457545.000000", mat: []memo.GroupID{4, 25, 64, 65}},
	{sf: 100, bq: 3, strat: core.LazyMarginalGreedy, cost: "340457545.000000", mat: []memo.GroupID{4, 25, 64, 65}},
	{sf: 100, bq: 3, strat: core.MaterializeAll, cost: "71706015512878.390625", mat: []memo.GroupID{1, 2, 4, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65}},
	{sf: 100, bq: 3, strat: core.VolcanoSH, cost: "410540984.600000", mat: []memo.GroupID{1, 2, 12, 19, 25, 63, 64}},
	{sf: 100, bq: 4, strat: core.Volcano, cost: "725929341.600000", mat: []memo.GroupID{}},
	{sf: 100, bq: 4, strat: core.Greedy, cost: "471464247.600000", mat: []memo.GroupID{4, 25, 65, 98}},
	{sf: 100, bq: 4, strat: core.LazyGreedyStrategy, cost: "471464247.600000", mat: []memo.GroupID{4, 25, 65, 98}},
	{sf: 100, bq: 4, strat: core.MarginalGreedy, cost: "474195858.800000", mat: []memo.GroupID{4, 25, 64, 65, 96, 98}},
	{sf: 100, bq: 4, strat: core.LazyMarginalGreedy, cost: "474195858.800000", mat: []memo.GroupID{4, 25, 64, 65, 96, 98}},
	{sf: 100, bq: 4, strat: core.MaterializeAll, cost: "77691430227062.187500", mat: []memo.GroupID{1, 2, 4, 12, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 82, 84, 86, 88, 90, 91, 92, 94, 96, 97, 98, 100}},
	{sf: 100, bq: 4, strat: core.VolcanoSH, cost: "557615696.600000", mat: []memo.GroupID{1, 2, 12, 19, 25, 33, 63, 64}},
	{sf: 100, bq: 5, strat: core.Volcano, cost: "928089428.800000", mat: []memo.GroupID{}},
	{sf: 100, bq: 5, strat: core.Greedy, cost: "620564009.200000", mat: []memo.GroupID{4, 25, 65, 98, 127}},
	{sf: 100, bq: 5, strat: core.LazyGreedyStrategy, cost: "620564009.200000", mat: []memo.GroupID{4, 25, 65, 98, 127}},
	{sf: 100, bq: 5, strat: core.MarginalGreedy, cost: "623296290.600000", mat: []memo.GroupID{4, 25, 64, 65, 96, 98, 130, 134}},
	{sf: 100, bq: 5, strat: core.LazyMarginalGreedy, cost: "623296290.600000", mat: []memo.GroupID{4, 25, 64, 65, 96, 98, 130, 134}},
	{sf: 100, bq: 5, strat: core.MaterializeAll, cost: "77691684044139.968750", mat: []memo.GroupID{1, 2, 4, 12, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 82, 84, 86, 88, 90, 91, 92, 94, 96, 97, 98, 100, 119, 121, 125, 127, 130, 132, 134}},
	{sf: 100, bq: 5, strat: core.VolcanoSH, cost: "759775783.800000", mat: []memo.GroupID{1, 2, 12, 19, 25, 33, 63, 64}},
	{sf: 100, bq: 6, strat: core.Volcano, cost: "1198197899.300000", mat: []memo.GroupID{}},
	{sf: 100, bq: 6, strat: core.Greedy, cost: "844243115.300000", mat: []memo.GroupID{4, 12, 25, 65, 98, 127, 152}},
	{sf: 100, bq: 6, strat: core.LazyGreedyStrategy, cost: "844243115.300000", mat: []memo.GroupID{4, 12, 25, 65, 98, 127, 152}},
	{sf: 100, bq: 6, strat: core.MarginalGreedy, cost: "846974957.700000", mat: []memo.GroupID{4, 12, 25, 64, 65, 96, 98, 134, 152}},
	{sf: 100, bq: 6, strat: core.LazyMarginalGreedy, cost: "846974957.700000", mat: []memo.GroupID{4, 12, 25, 64, 65, 96, 98, 134, 152}},
	{sf: 100, bq: 6, strat: core.MaterializeAll, cost: "77691924395338.468750", mat: []memo.GroupID{1, 2, 4, 12, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33, 52, 54, 56, 57, 58, 59, 60, 61, 62, 63, 64, 65, 82, 84, 86, 88, 90, 91, 92, 94, 96, 97, 98, 100, 119, 121, 125, 127, 130, 132, 134, 152, 159}},
	{sf: 100, bq: 6, strat: core.VolcanoSH, cost: "978212268.900000", mat: []memo.GroupID{1, 2, 12, 19, 25, 33, 63, 64, 152}},
}

func runStrategy(t *testing.T, sf float64, bq int, strat core.Strategy, parallelism int) core.Result {
	t.Helper()
	opt, err := volcano.NewOptimizer(tpcd.Catalog(sf), cost.Default(), tpcd.BQ(bq))
	if err != nil {
		t.Fatal(err)
	}
	opt.Searcher.Parallelism = parallelism
	return core.Run(opt, strat)
}

func checkParity(t *testing.T, row parityRow, res core.Result) {
	t.Helper()
	if got := fmt.Sprintf("%.6f", res.Cost); got != row.cost {
		t.Errorf("SF%g BQ%d %s: cost %s, seed oracle said %s", row.sf, row.bq, row.strat, got, row.cost)
	}
	got := append([]memo.GroupID(nil), res.Materialized...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != len(row.mat) {
		t.Fatalf("SF%g BQ%d %s: materialized %v, seed oracle chose %v", row.sf, row.bq, row.strat, got, row.mat)
	}
	for i := range got {
		if got[i] != row.mat[i] {
			t.Fatalf("SF%g BQ%d %s: materialized %v, seed oracle chose %v", row.sf, row.bq, row.strat, got, row.mat)
		}
	}
}

// TestOracleParityGolden checks every strategy against the seed-oracle
// golden results across BQ1–BQ6 at SF1 and SF100.
func TestOracleParityGolden(t *testing.T) {
	for _, row := range parityGolden {
		row := row
		t.Run(fmt.Sprintf("SF%g/BQ%d/%s", row.sf, row.bq, row.strat), func(t *testing.T) {
			checkParity(t, row, runStrategy(t, row.sf, row.bq, row.strat, 0))
		})
	}
}

// TestParallelScanParity forces a multi-worker ratio scan (Parallelism=4
// regardless of GOMAXPROCS) and checks the same goldens for the strategies
// with batched rounds; under -race this exercises the concurrent oracle.
func TestParallelScanParity(t *testing.T) {
	for _, row := range parityGolden {
		if row.sf != 1 || (row.strat != core.Greedy && row.strat != core.MarginalGreedy) {
			continue
		}
		row := row
		t.Run(fmt.Sprintf("BQ%d/%s", row.bq, row.strat), func(t *testing.T) {
			checkParity(t, row, runStrategy(t, row.sf, row.bq, row.strat, 4))
		})
	}
}
